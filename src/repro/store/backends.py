"""Blob storage backends of the image store.

A backend is a flat keyed blob space with **range reads** — the one
primitive the store needs to serve random access without loading whole
containers: ``read_range(key, offset, length)`` must cost O(length), not
O(blob).  Two backends ship:

``FilesystemBackend``
    One file per blob under a root directory, sharded by the first two hex
    characters of the key (content hashes distribute uniformly, so no shard
    ever degenerates).  Range reads are a seek; writes go through a
    temporary file + rename so a crash never leaves a half-written blob
    under a valid key.  With ``use_mmap=True`` range reads return
    :class:`memoryview` slices over an mmap'ed blob instead of copying —
    the zero-copy read path of the serve tier.  A view pins its mapping:
    replacing or deleting a blob drops the backend's reference to the old
    map, but readers still holding views keep reading the *old* bytes
    (the kernel keeps replaced pages valid until the last view dies),
    which is exactly the store's pin-during-read semantics.

Batched reads go through :meth:`BlobBackend.read_ranges`, which both
backends override to touch the blob **once per request** — one open (or
one cached mmap) for the filesystem, one lock acquisition for SQLite —
instead of re-opening per cell like per-cell ``read_range`` loops used to.

``SQLiteBackend``
    A single-file SQLite database.  Range reads use ``substr`` on the BLOB
    column, which SQLite serves from the row's overflow chain without
    materialising the whole value in the connection.  Handy when a corpus
    of many small streams should travel as one file.  The single shared
    connection is guarded by a lock so the backend can be driven from the
    serving tier's worker threads.

Both raise :class:`~repro.exceptions.BlobNotFoundError` for unknown keys
and are constructed by :func:`open_backend`, which picks the backend from
the path shape (``.sqlite``/``.db`` suffix → SQLite, otherwise a
directory).
"""

from __future__ import annotations

import abc
import mmap
import os
import sqlite3
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import BlobNotFoundError, StoreError

__all__ = [
    "BlobBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "open_backend",
]

#: What a range read yields: plain bytes, or a zero-copy ``memoryview``
#: (mmap mode).  Everything downstream — CRC verification, the entropy
#: decoders, the encoded-bytes cache — consumes either through the buffer
#: protocol.
Buffer = Union[bytes, memoryview]


class BlobBackend(abc.ABC):
    """Flat keyed blob storage with O(length) range reads."""

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (idempotent overwrite)."""

    @abc.abstractmethod
    def get(self, key: str) -> bytes:
        """Fetch the whole blob."""

    @abc.abstractmethod
    def read_range(self, key: str, offset: int, length: int) -> Buffer:
        """Fetch ``length`` bytes starting at ``offset`` (clamped at EOF)."""

    def read_ranges(
        self, key: str, spans: Sequence[Tuple[int, int]]
    ) -> List[Buffer]:
        """Fetch several ``(offset, length)`` spans of one blob.

        The default loops :meth:`read_range`; backends override it to pay
        their per-blob access cost (file open, lock acquisition) once per
        batch instead of once per span.  The batched region reads of the
        store tier come through here.
        """
        return [self.read_range(key, offset, length) for offset, length in spans]

    @abc.abstractmethod
    def length(self, key: str) -> int:
        """Byte size of the blob."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` is stored."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (order unspecified)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove a blob; unknown keys raise :class:`BlobNotFoundError`."""

    def stats(self) -> Dict[str, int]:
        """Blob count and total stored payload bytes."""
        blobs = 0
        total = 0
        for key in self.keys():
            blobs += 1
            total += self.length(key)
        return {"blobs": blobs, "bytes": total}

    def close(self) -> None:
        """Release backend resources (default: nothing to release)."""

    def __enter__(self) -> "BlobBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_key(key: str) -> str:
    """Reject keys that could escape the filesystem layout or SQL row."""
    if not key or not all(c.isalnum() or c in "-_" for c in key):
        raise StoreError("invalid blob key %r" % (key,))
    return key


class FilesystemBackend(BlobBackend):
    """One file per blob under ``root``, sharded by key prefix.

    With ``use_mmap=True`` the backend keeps a bounded LRU of mmap'ed
    blobs (``mmap_blobs`` entries) and serves range reads as
    :class:`memoryview` slices over them — zero copies between the page
    cache and the entropy decoder.  Mappings are never ``close()``d
    explicitly: a view exported from an mmap pins it (closing would raise
    ``BufferError``), so the backend just drops its reference on
    eviction, overwrite, delete and :meth:`close`, and the OS reclaims
    the mapping when the last outstanding view dies.  Because ``put``
    replaces files via ``os.replace``, readers holding views over a
    replaced blob keep seeing the old, internally-consistent bytes.
    """

    _SUFFIX = ".rplc"

    def __init__(
        self,
        root: Union[str, Path],
        use_mmap: bool = False,
        mmap_blobs: int = 128,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if mmap_blobs < 1:
            raise StoreError("mmap_blobs must be at least 1, got %d" % mmap_blobs)
        self.use_mmap = bool(use_mmap)
        self._mmap_blobs = mmap_blobs
        self._maps: "OrderedDict[str, mmap.mmap]" = OrderedDict()
        self._maps_lock = threading.Lock()

    def _path(self, key: str) -> Path:
        _check_key(key)
        shard = key[:2] if len(key) > 2 else "__"
        return self.root / shard / (key + self._SUFFIX)

    def _drop_map(self, key: str) -> None:
        """Forget a cached mapping (outstanding views keep it alive)."""
        with self._maps_lock:
            self._maps.pop(key, None)

    def _mapped(self, key: str) -> memoryview:
        """Zero-copy view over the whole blob, via the bounded mmap LRU."""
        with self._maps_lock:
            mapped = self._maps.get(key)
            if mapped is not None:
                self._maps.move_to_end(key)
                return memoryview(mapped)
        try:
            with open(self._path(key), "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size == 0:
                    # Zero-length files cannot be mapped; an empty view
                    # has the same reads (none).
                    return memoryview(b"")
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None
        with self._maps_lock:
            raced = self._maps.get(key)
            if raced is not None:
                # Another thread mapped the same blob first; use theirs.
                self._maps.move_to_end(key)
                return memoryview(raced)
            self._maps[key] = mapped
            while len(self._maps) > self._mmap_blobs:
                self._maps.popitem(last=False)
        return memoryview(mapped)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".%s." % key[:8], dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # The old inode stays mapped for readers mid-flight, but new reads
        # must see the new bytes.
        self._drop_map(key)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def read_range(self, key: str, offset: int, length: int) -> Buffer:
        if self.use_mmap:
            view = self._mapped(key)
            return view[offset : offset + max(0, length)]
        try:
            with open(self._path(key), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def read_ranges(
        self, key: str, spans: Sequence[Tuple[int, int]]
    ) -> List[Buffer]:
        if self.use_mmap:
            view = self._mapped(key)
            return [view[offset : offset + max(0, length)] for offset, length in spans]
        # One open handle for the whole batch: batched region reads used to
        # re-open the blob file once per cell.
        try:
            with open(self._path(key), "rb") as handle:
                out: List[Buffer] = []
                for offset, length in spans:
                    handle.seek(offset)
                    out.append(handle.read(length))
                return out
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def length(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*" + self._SUFFIX)):
                yield path.name[: -len(self._SUFFIX)]

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None
        self._drop_map(key)

    def close(self) -> None:
        with self._maps_lock:
            self._maps.clear()


class SQLiteBackend(BlobBackend):
    """All blobs in one SQLite file; range reads via ``substr`` on the BLOB."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # One shared connection, handed between threads under `_lock`: the
        # serving tier's worker pool calls range reads from whichever
        # thread picked the request up.  sqlite3 objects are safe to move
        # across threads as long as use is serialised, which the lock does.
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._lock = threading.Lock()
        try:
            with self._lock:
                self._connection.execute(
                    "CREATE TABLE IF NOT EXISTS blobs ("
                    "key TEXT PRIMARY KEY, length INTEGER NOT NULL, data BLOB NOT NULL)"
                )
                self._connection.commit()
        except sqlite3.Error as exc:
            self._connection.close()
            raise StoreError(
                "cannot open %s as a SQLite blob store: %s" % (self.path, exc)
            ) from exc

    def _one(self, sql: str, key: str) -> Tuple:
        with self._lock:
            row = self._connection.execute(sql, (_check_key(key),)).fetchone()
        if row is None:
            raise BlobNotFoundError("no blob stored under key %r" % key)
        return row

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO blobs (key, length, data) VALUES (?, ?, ?)",
                (_check_key(key), len(data), sqlite3.Binary(data)),
            )
            self._connection.commit()

    def get(self, key: str) -> bytes:
        return bytes(self._one("SELECT data FROM blobs WHERE key = ?", key)[0])

    def read_range(self, key: str, offset: int, length: int) -> Buffer:
        # substr is 1-indexed; SQLite slices the stored value server-side.
        with self._lock:
            row = self._connection.execute(
                "SELECT substr(data, ?, ?) FROM blobs WHERE key = ?",
                (offset + 1, length, _check_key(key)),
            ).fetchone()
        if row is None:
            raise BlobNotFoundError("no blob stored under key %r" % key)
        return bytes(row[0])

    def read_ranges(
        self, key: str, spans: Sequence[Tuple[int, int]]
    ) -> List[Buffer]:
        # One lock acquisition for the whole batch; still per-span substr so
        # SQLite never materialises the whole blob in the connection.
        _check_key(key)
        out: List[Buffer] = []
        with self._lock:
            for offset, length in spans:
                row = self._connection.execute(
                    "SELECT substr(data, ?, ?) FROM blobs WHERE key = ?",
                    (offset + 1, length, key),
                ).fetchone()
                if row is None:
                    raise BlobNotFoundError("no blob stored under key %r" % key)
                out.append(bytes(row[0]))
        return out

    def length(self, key: str) -> int:
        return int(self._one("SELECT length FROM blobs WHERE key = ?", key)[0])

    def contains(self, key: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM blobs WHERE key = ?", (_check_key(key),)
            ).fetchone()
        return row is not None

    def keys(self) -> Iterator[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT key FROM blobs ORDER BY key"
            ).fetchall()
        for (key,) in rows:
            yield key

    def delete(self, key: str) -> None:
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM blobs WHERE key = ?", (_check_key(key),)
            )
            self._connection.commit()
        if cursor.rowcount == 0:
            raise BlobNotFoundError("no blob stored under key %r" % key)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            blobs, total = self._connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(length), 0) FROM blobs"
            ).fetchone()
        return {"blobs": int(blobs), "bytes": int(total)}

    def close(self) -> None:
        with self._lock:
            self._connection.close()


def open_backend(path: Union[str, Path], use_mmap: bool = False) -> BlobBackend:
    """Open the backend a path implies.

    ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` paths (or existing regular
    files) open a :class:`SQLiteBackend`; everything else is treated as a
    :class:`FilesystemBackend` root directory.  ``use_mmap`` switches the
    filesystem backend to zero-copy ``memoryview`` range reads (SQLite has
    no mapping to expose and ignores the flag).
    """
    path = Path(path)
    if path.suffix.lower() in (".sqlite", ".sqlite3", ".db") or path.is_file():
        return SQLiteBackend(path)
    return FilesystemBackend(path, use_mmap=use_mmap)
