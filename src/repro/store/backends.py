"""Blob storage backends of the image store.

A backend is a flat keyed blob space with **range reads** — the one
primitive the store needs to serve random access without loading whole
containers: ``read_range(key, offset, length)`` must cost O(length), not
O(blob).  Two backends ship:

``FilesystemBackend``
    One file per blob under a root directory, sharded by the first two hex
    characters of the key (content hashes distribute uniformly, so no shard
    ever degenerates).  Range reads are a seek; writes go through a
    temporary file + rename so a crash never leaves a half-written blob
    under a valid key.

``SQLiteBackend``
    A single-file SQLite database.  Range reads use ``substr`` on the BLOB
    column, which SQLite serves from the row's overflow chain without
    materialising the whole value in the connection.  Handy when a corpus
    of many small streams should travel as one file.  The single shared
    connection is guarded by a lock so the backend can be driven from the
    serving tier's worker threads.

Both raise :class:`~repro.exceptions.BlobNotFoundError` for unknown keys
and are constructed by :func:`open_backend`, which picks the backend from
the path shape (``.sqlite``/``.db`` suffix → SQLite, otherwise a
directory).
"""

from __future__ import annotations

import abc
import os
import sqlite3
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

from repro.exceptions import BlobNotFoundError, StoreError

__all__ = [
    "BlobBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "open_backend",
]


class BlobBackend(abc.ABC):
    """Flat keyed blob storage with O(length) range reads."""

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (idempotent overwrite)."""

    @abc.abstractmethod
    def get(self, key: str) -> bytes:
        """Fetch the whole blob."""

    @abc.abstractmethod
    def read_range(self, key: str, offset: int, length: int) -> bytes:
        """Fetch ``length`` bytes starting at ``offset`` (clamped at EOF)."""

    @abc.abstractmethod
    def length(self, key: str) -> int:
        """Byte size of the blob."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` is stored."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (order unspecified)."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove a blob; unknown keys raise :class:`BlobNotFoundError`."""

    def stats(self) -> Dict[str, int]:
        """Blob count and total stored payload bytes."""
        blobs = 0
        total = 0
        for key in self.keys():
            blobs += 1
            total += self.length(key)
        return {"blobs": blobs, "bytes": total}

    def close(self) -> None:
        """Release backend resources (default: nothing to release)."""

    def __enter__(self) -> "BlobBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _check_key(key: str) -> str:
    """Reject keys that could escape the filesystem layout or SQL row."""
    if not key or not all(c.isalnum() or c in "-_" for c in key):
        raise StoreError("invalid blob key %r" % (key,))
    return key


class FilesystemBackend(BlobBackend):
    """One file per blob under ``root``, sharded by key prefix."""

    _SUFFIX = ".rplc"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        _check_key(key)
        shard = key[:2] if len(key) > 2 else "__"
        return self.root / shard / (key + self._SUFFIX)

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".%s." % key[:8], dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def read_range(self, key: str, offset: int, length: int) -> bytes:
        try:
            with open(self._path(key), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def length(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self) -> Iterator[str]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*" + self._SUFFIX)):
                yield path.name[: -len(self._SUFFIX)]

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            raise BlobNotFoundError("no blob stored under key %r" % key) from None


class SQLiteBackend(BlobBackend):
    """All blobs in one SQLite file; range reads via ``substr`` on the BLOB."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # One shared connection, handed between threads under `_lock`: the
        # serving tier's worker pool calls range reads from whichever
        # thread picked the request up.  sqlite3 objects are safe to move
        # across threads as long as use is serialised, which the lock does.
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._lock = threading.Lock()
        try:
            with self._lock:
                self._connection.execute(
                    "CREATE TABLE IF NOT EXISTS blobs ("
                    "key TEXT PRIMARY KEY, length INTEGER NOT NULL, data BLOB NOT NULL)"
                )
                self._connection.commit()
        except sqlite3.Error as exc:
            self._connection.close()
            raise StoreError(
                "cannot open %s as a SQLite blob store: %s" % (self.path, exc)
            ) from exc

    def _one(self, sql: str, key: str) -> Tuple:
        with self._lock:
            row = self._connection.execute(sql, (_check_key(key),)).fetchone()
        if row is None:
            raise BlobNotFoundError("no blob stored under key %r" % key)
        return row

    def put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO blobs (key, length, data) VALUES (?, ?, ?)",
                (_check_key(key), len(data), sqlite3.Binary(data)),
            )
            self._connection.commit()

    def get(self, key: str) -> bytes:
        return bytes(self._one("SELECT data FROM blobs WHERE key = ?", key)[0])

    def read_range(self, key: str, offset: int, length: int) -> bytes:
        # substr is 1-indexed; SQLite slices the stored value server-side.
        with self._lock:
            row = self._connection.execute(
                "SELECT substr(data, ?, ?) FROM blobs WHERE key = ?",
                (offset + 1, length, _check_key(key)),
            ).fetchone()
        if row is None:
            raise BlobNotFoundError("no blob stored under key %r" % key)
        return bytes(row[0])

    def length(self, key: str) -> int:
        return int(self._one("SELECT length FROM blobs WHERE key = ?", key)[0])

    def contains(self, key: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM blobs WHERE key = ?", (_check_key(key),)
            ).fetchone()
        return row is not None

    def keys(self) -> Iterator[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT key FROM blobs ORDER BY key"
            ).fetchall()
        for (key,) in rows:
            yield key

    def delete(self, key: str) -> None:
        with self._lock:
            cursor = self._connection.execute(
                "DELETE FROM blobs WHERE key = ?", (_check_key(key),)
            )
            self._connection.commit()
        if cursor.rowcount == 0:
            raise BlobNotFoundError("no blob stored under key %r" % key)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            blobs, total = self._connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(length), 0) FROM blobs"
            ).fetchone()
        return {"blobs": int(blobs), "bytes": int(total)}

    def close(self) -> None:
        with self._lock:
            self._connection.close()


def open_backend(path: Union[str, Path]) -> BlobBackend:
    """Open the backend a path implies.

    ``*.sqlite`` / ``*.sqlite3`` / ``*.db`` paths (or existing regular
    files) open a :class:`SQLiteBackend`; everything else is treated as a
    :class:`FilesystemBackend` root directory.
    """
    path = Path(path)
    if path.suffix.lower() in (".sqlite", ".sqlite3", ".db") or path.is_file():
        return SQLiteBackend(path)
    return FilesystemBackend(path)
