"""The serving layer: a content-addressed store over indexed containers.

This package turns the codec into a queryable system: compressed streams
are stored by content hash in a pluggable blob backend (filesystem or
SQLite), and plane/region queries are answered straight off the version-3
container's byte-offset index — range reads fetch exactly the cells a
query touches, a size-bounded LRU keeps hot decoded cells in memory, and
batched requests dedupe cells across regions.  See
:class:`~repro.store.store.ImageStore` and the ``repro-store`` console
script.
"""

from repro.store.backends import (
    BlobBackend,
    FilesystemBackend,
    SQLiteBackend,
    open_backend,
)
from repro.store.cache import DEFAULT_CACHE_BYTES, CacheStats, CellCache
from repro.store.store import ImageStore

__all__ = [
    "ImageStore",
    "BlobBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "open_backend",
    "CellCache",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
]
