"""The serving layer: a content-addressed store over indexed containers.

This package turns the codec into a queryable system: compressed streams
are stored by content hash in a pluggable blob backend (filesystem or
SQLite), and plane/region queries are answered straight off the version-3
container's byte-offset index — range reads fetch exactly the cells a
query touches, a size-bounded LRU keeps hot decoded cells in memory, and
batched requests dedupe cells across regions.  See
:class:`~repro.store.store.ImageStore` and the ``repro-store`` console
script.

On top of the blobs sits the data-plane lifecycle: a metadata
:mod:`catalog <repro.store.catalog>` recorded at ``put`` time (queryable
with filters + pagination), TTL soft-delete with a :mod:`GC sweep
<repro.store.gc>` that reclaims expired tombstones without ever touching
a live or in-flight key, and a :mod:`recompactor
<repro.store.compactor>` that re-encodes cold blobs and swaps them in
atomically under the same content key.
"""

from repro.store.backends import (
    BlobBackend,
    FilesystemBackend,
    SQLiteBackend,
    open_backend,
)
from repro.store.cache import DEFAULT_CACHE_BYTES, CacheStats, CellCache
from repro.store.catalog import (
    DEFAULT_TTL_SECONDS,
    Catalog,
    CatalogEntry,
    CatalogFilter,
    JournalCatalog,
    MemoryCatalog,
    SQLiteCatalog,
    open_catalog,
)
from repro.store.compactor import (
    CompactionResult,
    Compactor,
    KeyCompaction,
    compact,
    compact_key,
)
from repro.store.gc import GcDaemon, GcResult, sweep
from repro.store.store import ImageStore

__all__ = [
    "ImageStore",
    "BlobBackend",
    "FilesystemBackend",
    "SQLiteBackend",
    "open_backend",
    "CellCache",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "Catalog",
    "CatalogEntry",
    "CatalogFilter",
    "MemoryCatalog",
    "JournalCatalog",
    "SQLiteCatalog",
    "open_catalog",
    "DEFAULT_TTL_SECONDS",
    "GcResult",
    "GcDaemon",
    "sweep",
    "KeyCompaction",
    "CompactionResult",
    "compact_key",
    "compact",
    "Compactor",
]
