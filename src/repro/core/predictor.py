"""Gradient-adjusted prediction (Section II of the paper).

The predictor estimates the local edge direction from the vertical and
horizontal gradient magnitudes ``dv`` and ``dh`` (sums of absolute
differences of causal neighbours) and blends the west and north neighbours
accordingly.  It is the hardware-amenable simplification of CALIC's GAP: the
only operations are additions, subtractions, comparisons and shifts — no
multiplication or division — which is exactly the constraint Section II
states.

The three decision thresholds (80 / 32 / 8 by default) and the blending
shifts follow the published GAP formulation; they are exposed through
:class:`~repro.core.config.CodecConfig` so the ablation benchmarks can vary
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CodecConfig
from repro.core.neighborhood import Neighborhood

__all__ = ["GradientPrediction", "GradientAdjustedPredictor"]


@dataclass(frozen=True)
class GradientPrediction:
    """Output of the prediction stage for one pixel."""

    #: Primary predicted value (before error feedback), clamped to the range.
    predicted: int
    #: Horizontal gradient magnitude dh.
    dh: int
    #: Vertical gradient magnitude dv.
    dv: int


class GradientAdjustedPredictor:
    """The simplified GAP predictor of the proposed codec.

    The predictor is stateless: everything it needs is in the causal
    neighbourhood, so one instance can be shared by encoder and decoder.
    """

    def __init__(self, config: CodecConfig) -> None:
        self._config = config
        self._max_value = config.max_sample

    def predict(self, neighbors: Neighborhood) -> GradientPrediction:
        """Compute the primary prediction and the local gradients.

        The gradient estimates follow the paper: ``dh`` sums horizontal
        differences of the context symbols, ``dv`` sums vertical ones.
        """
        w, ww, n, nn, ne, nw, nne = neighbors.as_tuple()

        dh = abs(w - ww) + abs(n - nw) + abs(n - ne)
        dv = abs(w - nw) + abs(n - nn) + abs(ne - nne)

        sharp = self._config.gap_sharp_threshold
        strong = self._config.gap_strong_threshold
        weak = self._config.gap_weak_threshold

        if dv - dh > sharp:
            # Sharp horizontal edge: the west neighbour is the best guess.
            predicted = w
        elif dh - dv > sharp:
            # Sharp vertical edge: the north neighbour is the best guess.
            predicted = n
        else:
            # Smooth area: blend W and N, nudged by the NE/NW difference.
            predicted = ((w + n) >> 1) + ((ne - nw) >> 2)
            if dv - dh > strong:
                predicted = (predicted + w) >> 1
            elif dv - dh > weak:
                predicted = (3 * predicted + w) >> 2
            elif dh - dv > strong:
                predicted = (predicted + n) >> 1
            elif dh - dv > weak:
                predicted = (3 * predicted + n) >> 2

        if predicted < 0:
            predicted = 0
        elif predicted > self._max_value:
            predicted = self._max_value

        return GradientPrediction(predicted=predicted, dh=dh, dv=dv)
