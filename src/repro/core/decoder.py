"""Decoder of the proposed codec.

The decoder mirrors :mod:`repro.core.encoder` step for step: it derives the
same prediction, context and adjusted prediction from the already-decoded
causal pixels, asks the probability estimator to decode the mapped error
symbol, un-maps it into the pixel value and commits that value to the same
adaptive state the encoder updated.  Because every model update depends only
on data both sides share, the models remain synchronised for the whole
image.

Version-2 (striped) containers are decoded stripe by stripe: every stripe
payload is an independent stream with fresh adaptive state, so the stripes
can also be decoded concurrently — that parallel path lives in
:mod:`repro.parallel.codec`; this module provides the serial reference
implementation used by :func:`decode_image`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bitstream import (
    CodecId,
    StreamHeader,
    parse_stream_header,
    split_stripe_payloads,
)
from repro.core.config import CodecConfig
from repro.core.mapping import unmap_error
from repro.core.modeling import ImageModeler
from repro.core.probability import ProbabilityEstimator
from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder
from repro.exceptions import BitstreamError, CodecMismatchError, StripingError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader

__all__ = ["decode_image", "decode_payload", "resolve_stream_config"]


def resolve_stream_config(header: StreamHeader, config: Optional[CodecConfig]) -> CodecConfig:
    """Return the codec configuration to decode a proposed-codec stream with.

    When ``config`` is omitted it is reconstructed from the container header
    (count-bits parameter and hardware flag); when provided it must be
    consistent with the header.
    """
    if header.codec not in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
        raise CodecMismatchError(
            "stream was produced by %s, not the proposed codec" % header.codec.name
        )
    if config is None:
        if header.flags & 1:
            config = CodecConfig.hardware(
                count_bits=header.parameter, bit_depth=header.bit_depth
            )
        else:
            config = CodecConfig.reference(
                count_bits=header.parameter, bit_depth=header.bit_depth
            )
    else:
        if config.count_bits != header.parameter:
            raise CodecMismatchError(
                "stream was encoded with count_bits=%d but decoder is configured "
                "with count_bits=%d" % (header.parameter, config.count_bits)
            )
        if bool(header.flags & 1) != config.use_lut_division:
            raise CodecMismatchError(
                "stream hardware flag does not match decoder configuration"
            )
    if config.bit_depth != header.bit_depth:
        raise CodecMismatchError(
            "stream bit depth %d does not match configuration %d"
            % (header.bit_depth, config.bit_depth)
        )
    return config


def decode_payload(
    payload: bytes, width: int, height: int, config: CodecConfig, engine: str = "reference"
) -> List[int]:
    """Decode one container-less payload into its row-major pixel list.

    This is the inner decoder matching :func:`repro.core.encoder.encode_payload`:
    it assumes fresh adaptive state, so it decodes exactly one stripe (or a
    whole single-stripe image).  The bit reader is bounded so a corrupt or
    truncated payload raises :class:`~repro.exceptions.BitstreamError`
    instead of decoding garbage from an endless run of phantom zero bits.

    ``engine="fast"`` delegates to the inlined scalar decoder of
    :mod:`repro.fast`; both engines accept both engines' streams.
    """
    from repro.core.interface import require_engine

    if require_engine(engine) == "fast":
        from repro.fast.engine import decode_payload_fast

        return decode_payload_fast(payload, width, height, config)

    modeler = ImageModeler(width, config)
    estimator = ProbabilityEstimator(config)
    reader = BitReader(payload, max_phantom_bits=4 * config.coder_precision)
    coder = BinaryArithmeticDecoder(reader, precision=config.coder_precision)

    bit_depth = config.bit_depth
    pixels: List[int] = []
    for _y in range(height):
        for x in range(width):
            model = modeler.model_pixel(x)
            symbol = estimator.decode_symbol(coder, model.context.energy)
            value, wrapped_error = unmap_error(symbol, model.adjusted, bit_depth)
            modeler.commit_pixel(value, wrapped_error, model)
            pixels.append(value)
        modeler.end_row()
    return pixels


def decode_image(
    data: bytes, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> GrayImage:
    """Reconstruct the image from a stream produced by
    :func:`repro.core.encoder.encode_image` or by the stripe-parallel codec.

    Parameters
    ----------
    data:
        The complete container (header + payload).  Both container versions
        are accepted; striped (version-2) streams are decoded stripe by
        stripe, serially.
    config:
        Optional codec configuration.  When omitted, the configuration is
        reconstructed from the container header (count-bits parameter and
        hardware flag); when provided it must be consistent with the header.
    engine:
        Decoding engine (``"reference"`` or ``"fast"``); both decode both
        engines' streams identically.

    Multi-component (version-3) streams with a single plane decode here
    too; streams holding several planes cannot be represented as a
    :class:`GrayImage` and are rejected with an error naming the container
    version actually found — decode those with
    :func:`repro.core.components.decode_planar` or
    :meth:`repro.core.codec.ProposedCodec.decode`.
    """
    # Route on the header alone: the v3 path re-parses inside decode_plane
    # anyway, so copying the payload out first would be pure waste.
    header = parse_stream_header(data)

    if header.component_lengths:
        from repro.core.components import decode_plane

        if header.component_count > 1:
            raise CodecMismatchError(
                "stream is a version-%d multi-component container holding %d "
                "planes, which cannot decode to a single grey-scale image; "
                "use repro.core.components.decode_planar"
                % (header.version, header.component_count)
            )
        return decode_plane(data, 0, config, engine=engine)

    config = resolve_stream_config(header, config)
    payload = data[header.payload_offset :]

    if not header.stripe_lengths:
        pixels = decode_payload(payload, header.width, header.height, config, engine=engine)
        return GrayImage(header.width, header.height, pixels, header.bit_depth)

    from repro.parallel.partition import plan_stripes

    try:
        plan = plan_stripes(header.height, len(header.stripe_lengths))
    except StripingError as exc:
        raise BitstreamError("invalid stripe table: %s" % exc) from exc
    pixels = []
    for spec, stripe_payload in zip(plan, split_stripe_payloads(header, payload)):
        pixels.extend(
            decode_payload(stripe_payload, header.width, spec.row_count, config, engine=engine)
        )
    return GrayImage(header.width, header.height, pixels, header.bit_depth)
