"""Decoder front of the proposed codec.

The per-pixel decoding loop lives in the engine backends (see
:mod:`repro.core.refengine` and :mod:`repro.fast`), reached through the
engine registry of :mod:`repro.core.interface`; container walking is the
unified cell-grid pipeline of :mod:`repro.core.cellgrid`.  This module
provides the functional decode entry points: :func:`decode_payload` decodes
one cell with whichever engine is selected, :func:`decode_image`
reconstructs a grey image from any container a grey image can come back
from, and :func:`resolve_stream_config` rebuilds the codec configuration a
stream was written with.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bitstream import CodecId, StreamHeader, parse_stream_header
from repro.core.config import CodecConfig
from repro.exceptions import CodecMismatchError
from repro.imaging.image import GrayImage

__all__ = ["decode_image", "decode_payload", "resolve_stream_config"]


def resolve_stream_config(header: StreamHeader, config: Optional[CodecConfig]) -> CodecConfig:
    """Return the codec configuration to decode a proposed-codec stream with.

    When ``config`` is omitted it is reconstructed from the container header
    (count-bits parameter and hardware flag); when provided it must be
    consistent with the header.
    """
    if header.codec not in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
        raise CodecMismatchError(
            "stream was produced by %s, not the proposed codec" % header.codec.name
        )
    if config is None:
        if header.flags & 1:
            config = CodecConfig.hardware(
                count_bits=header.parameter, bit_depth=header.bit_depth
            )
        else:
            config = CodecConfig.reference(
                count_bits=header.parameter, bit_depth=header.bit_depth
            )
    else:
        if config.count_bits != header.parameter:
            raise CodecMismatchError(
                "stream was encoded with count_bits=%d but decoder is configured "
                "with count_bits=%d" % (header.parameter, config.count_bits)
            )
        if bool(header.flags & 1) != config.use_lut_division:
            raise CodecMismatchError(
                "stream hardware flag does not match decoder configuration"
            )
    if config.bit_depth != header.bit_depth:
        raise CodecMismatchError(
            "stream bit depth %d does not match configuration %d"
            % (header.bit_depth, config.bit_depth)
        )
    return config


def decode_payload(
    payload: bytes, width: int, height: int, config: CodecConfig, engine: str = "reference"
) -> List[int]:
    """Decode one container-less payload into its row-major pixel list.

    This is the inner decoder matching :func:`repro.core.encoder.encode_payload`:
    it assumes fresh adaptive state, so it decodes exactly one cell (or a
    whole single-stripe image).  The bit reader is bounded so a corrupt or
    truncated payload raises :class:`~repro.exceptions.BitstreamError`
    instead of decoding garbage from an endless run of phantom zero bits.

    ``engine`` selects the registered backend that does the work
    (:func:`repro.core.interface.get_engine`); every backend accepts every
    backend's payloads.
    """
    from repro.core.interface import get_engine

    return get_engine(engine).decode_payload(payload, width, height, config)


def decode_image(
    data: bytes, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> GrayImage:
    """Reconstruct the image from a stream produced by
    :func:`repro.core.encoder.encode_image` or by the stripe-parallel codec.

    Parameters
    ----------
    data:
        The complete container (header + payload).  All container versions
        are accepted; striped (version-2) streams are decoded stripe by
        stripe, serially.
    config:
        Optional codec configuration.  When omitted, the configuration is
        reconstructed from the container header (count-bits parameter and
        hardware flag); when provided it must be consistent with the header.
    engine:
        Decoding engine; every registered engine decodes every engine's
        streams identically.

    Multi-component (version-3) streams with a single plane decode here
    too; streams holding several planes cannot be represented as a
    :class:`GrayImage` and are rejected with an error naming the container
    version actually found — decode those with
    :func:`repro.core.components.decode_planar` or
    :meth:`repro.core.codec.ProposedCodec.decode`.
    """
    from repro.core.cellgrid import decode_selection

    header = parse_stream_header(data)
    if header.component_count > 1:
        raise CodecMismatchError(
            "stream is a version-%d multi-component container holding %d "
            "planes, which cannot decode to a single grey-scale image; "
            "use repro.core.components.decode_planar"
            % (header.version, header.component_count)
        )
    selection = decode_selection(data, config, engine=engine, planes=(0,))
    return selection.plane_image(0)
