"""Decoder of the proposed codec.

The decoder mirrors :mod:`repro.core.encoder` step for step: it derives the
same prediction, context and adjusted prediction from the already-decoded
causal pixels, asks the probability estimator to decode the mapped error
symbol, un-maps it into the pixel value and commits that value to the same
adaptive state the encoder updated.  Because every model update depends only
on data both sides share, the models remain synchronised for the whole
image.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bitstream import CodecId, unpack_stream
from repro.core.config import CodecConfig
from repro.core.mapping import unmap_error
from repro.core.modeling import ImageModeler
from repro.core.probability import ProbabilityEstimator
from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder
from repro.exceptions import CodecMismatchError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader

__all__ = ["decode_image"]


def decode_image(data: bytes, config: Optional[CodecConfig] = None) -> GrayImage:
    """Reconstruct the image from a stream produced by
    :func:`repro.core.encoder.encode_image`.

    Parameters
    ----------
    data:
        The complete container (header + payload).
    config:
        Optional codec configuration.  When omitted, the configuration is
        reconstructed from the container header (count-bits parameter and
        hardware flag); when provided it must be consistent with the header.
    """
    header, payload = unpack_stream(data)
    if header.codec not in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
        raise CodecMismatchError(
            "stream was produced by %s, not the proposed codec" % header.codec.name
        )

    if config is None:
        if header.flags & 1:
            config = CodecConfig.hardware(count_bits=header.parameter)
        else:
            config = CodecConfig.reference(count_bits=header.parameter)
    else:
        if config.count_bits != header.parameter:
            raise CodecMismatchError(
                "stream was encoded with count_bits=%d but decoder is configured "
                "with count_bits=%d" % (header.parameter, config.count_bits)
            )
        if bool(header.flags & 1) != config.use_lut_division:
            raise CodecMismatchError(
                "stream hardware flag does not match decoder configuration"
            )
    if config.bit_depth != header.bit_depth:
        raise CodecMismatchError(
            "stream bit depth %d does not match configuration %d"
            % (header.bit_depth, config.bit_depth)
        )

    modeler = ImageModeler(header.width, config)
    estimator = ProbabilityEstimator(config)
    reader = BitReader(payload)
    coder = BinaryArithmeticDecoder(reader, precision=config.coder_precision)

    bit_depth = config.bit_depth
    pixels = []
    for _y in range(header.height):
        for x in range(header.width):
            model = modeler.model_pixel(x)
            symbol = estimator.decode_symbol(coder, model.context.energy)
            value, wrapped_error = unmap_error(symbol, model.adjusted, bit_depth)
            modeler.commit_pixel(value, wrapped_error, model)
            pixels.append(value)
        modeler.end_row()

    return GrayImage(header.width, header.height, pixels, header.bit_depth)
