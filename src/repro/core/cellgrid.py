"""The unified (planes x stripes) cell-grid pipeline.

Every stream this package writes — grey-scale or planar, serial or
stripe-parallel, reference or fast engine — is the same thing underneath: a
grid of ``planes x stripes`` cells, each cell an independently entropy-coded
payload with fresh adaptive state.  This module is the one place that grid
is planned, fanned out, and reassembled; :mod:`repro.core.encoder`,
:mod:`repro.core.components` and :mod:`repro.parallel.codec` are thin
wrappers over it, so serial, parallel, grey and planar all run the same
code path and cannot drift apart.

A :class:`~repro.imaging.image.GrayImage` is simply the one-plane special
case of the grid; the container version is the only thing that
distinguishes the front-ends:

* grey, single cell, ``striped=False`` — version-1 container;
* grey, striped — version-2 container (stripe table);
* planar — version-3 container (component table doubling as the
  random-access index with per-cell CRC-32).

Cell payload bytes are computed by whichever registered engine is selected
(:func:`repro.core.interface.get_engine`), and the fan-out accepts any
executor with a ``map`` method, so the process pool of
:mod:`repro.parallel.executor` composes with every path.  Streams are
byte-identical regardless of engine or executor.

On the decode side, :func:`decode_selection` is the single random-access
reader behind ``decode_image``, ``decode_planar``, ``decode_plane``,
``decode_region`` and the parallel decoder: it maps any (planes, stripe
range) selection onto the container's byte-offset index, CRC-checks and
entropy-decodes exactly the cells the selection needs, and inverts the
inter-plane delta predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bitstream import (
    COMPONENT_FLAG_PLANE_DELTA,
    CodecId,
    StreamHeader,
    component_spans,
    pack_component_stream,
    pack_stream,
    parse_stream_header,
    verify_component_cell,
)
from repro.core.config import CodecConfig
from repro.core.decoder import decode_payload, resolve_stream_config
from repro.core.encoder import EncodeStatistics, encode_payload, merge_statistics
from repro.exceptions import (
    BitstreamError,
    ConfigError,
    ModelStateError,
    StripingError,
)
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage, default_plane_names

__all__ = [
    "DecodedSelection",
    "plan_for_header",
    "plane_residuals",
    "reconstruct_plane_arrays",
    "encode_grid",
    "decode_selection",
    "select_cells",
    "assemble_selection",
    "decode_one_cell",
]


# ---------------------------------------------------------------------- #
# inter-plane predictor
# ---------------------------------------------------------------------- #


def plane_residuals(
    image: Union[GrayImage, PlanarImage], plane_delta: bool
) -> List[GrayImage]:
    """Return the plane images actually handed to the entropy coder.

    A grey image is its own single residual plane.  Without the predictor
    the planes themselves are returned.  With it, plane ``k > 0`` becomes
    ``(plane_k - plane_{k-1}) mod 2**bit_depth`` — the modular delta is
    exactly invertible, so the scheme stays lossless.
    """
    if isinstance(image, GrayImage):
        return [image]
    planes = list(image.planes())
    if not plane_delta or len(planes) == 1:
        return planes
    size = 1 << image.bit_depth
    arrays = [plane.to_array() for plane in planes]
    residuals = [planes[0]]
    for k in range(1, len(planes)):
        delta = (arrays[k] - arrays[k - 1]) % size
        residuals.append(
            GrayImage(
                image.width,
                image.height,
                delta.reshape(-1).tolist(),
                image.bit_depth,
                planes[k].name,
            )
        )
    return residuals


def reconstruct_plane_arrays(
    residuals: Sequence[np.ndarray], bit_depth: int, plane_delta: bool
) -> List[np.ndarray]:
    """Invert :func:`plane_residuals` on decoded residual arrays."""
    if not plane_delta or len(residuals) == 1:
        return list(residuals)
    size = 1 << bit_depth
    planes = [residuals[0]]
    for k in range(1, len(residuals)):
        planes.append((residuals[k] + planes[k - 1]) % size)
    return planes


# ---------------------------------------------------------------------- #
# grid planning
# ---------------------------------------------------------------------- #


def _plan_stripes(height: int, stripes: int):
    # Function-level import: repro.parallel re-exports ParallelCodec, which
    # imports this module, so a top-level import would be a cycle.
    from repro.parallel.partition import plan_stripes

    return plan_stripes(height, stripes)


def plan_for_header(header: StreamHeader):
    """Derive the deterministic stripe partition a stream was coded with."""
    try:
        return _plan_stripes(header.height, header.stripe_count)
    except StripingError as exc:
        raise BitstreamError("invalid stripe table: %s" % exc) from exc


def _resolve_map(executor, task_count: int) -> Callable:
    """Turn the ``executor`` argument into a ``map(fn, tasks)`` callable.

    ``None`` runs the tasks inline; an object with a ``map`` method is used
    as-is; anything else is treated as a factory called with the task count
    (the :meth:`~repro.parallel.codec.ParallelCodec._executor_for` shape),
    letting callers defer the serial-vs-pool choice until the grid is known.
    """
    if executor is None:
        return lambda fn, tasks: [fn(task) for task in tasks]
    if not hasattr(executor, "map"):
        executor = executor(task_count)
    return executor.map


# ---------------------------------------------------------------------- #
# encode
# ---------------------------------------------------------------------- #


def _encode_cell_task(task: Tuple[int, int, List[int], int, CodecConfig, str]):
    """Worker: encode one cell; returns (payload, statistics).

    Module-level so it can be pickled into pool workers; the task tuple is
    ``(width, row_count, pixels, bit_depth, config, engine)``.
    """
    width, row_count, pixels, bit_depth, config, engine = task
    cell = GrayImage(width, row_count, pixels, bit_depth)
    return encode_payload(cell, config, engine=engine)


def encode_grid(
    image: Union[GrayImage, PlanarImage],
    config: CodecConfig,
    engine: str = "reference",
    stripes: int = 1,
    plane_delta: bool = False,
    executor=None,
    striped: bool = False,
) -> Tuple[bytes, EncodeStatistics]:
    """Compress any image through the unified cell grid; return (stream, stats).

    The image is planned into ``planes x stripes`` cells, every cell is
    coded by the selected engine (optionally fanned over ``executor``), and
    the payloads are assembled into the container the grid shape implies:
    version 3 for planar inputs, version 2 for striped grey inputs
    (``striped=True`` keeps a one-stripe grey stream in the striped format,
    so the parallel codec's output never depends on the machine), version 1
    otherwise.  The stream is byte-identical for every engine and executor.
    """
    if image.bit_depth != config.bit_depth:
        raise ConfigError(
            "image bit depth %d does not match codec bit depth %d"
            % (image.bit_depth, config.bit_depth)
        )
    try:
        plan = _plan_stripes(image.height, stripes)
    except StripingError as exc:
        raise ConfigError(str(exc)) from exc

    residuals = plane_residuals(image, plane_delta)
    tasks = []
    for residual in residuals:
        pixels = residual.pixels()
        for spec in plan:
            tasks.append(
                (
                    image.width,
                    spec.row_count,
                    pixels[spec.start_row * image.width : spec.stop_row * image.width],
                    image.bit_depth,
                    config,
                    engine,
                )
            )
    results = _resolve_map(executor, len(tasks))(_encode_cell_task, tasks)
    payloads = [payload for payload, _ in results]
    plane_payloads = [
        payloads[plane * len(plan) : (plane + 1) * len(plan)]
        for plane in range(len(residuals))
    ]

    codec_id = CodecId.PROPOSED_HARDWARE if config.use_lut_division else CodecId.PROPOSED
    flags = 1 if config.use_lut_division else 0
    if isinstance(image, PlanarImage):
        stream = pack_component_stream(
            codec_id,
            image.width,
            image.height,
            image.bit_depth,
            plane_payloads,
            parameter=config.count_bits,
            flags=flags,
            component_flags=COMPONENT_FLAG_PLANE_DELTA if plane_delta else 0,
        )
    else:
        stream = pack_stream(
            codec_id,
            image.width,
            image.height,
            image.bit_depth,
            b"".join(plane_payloads[0]),
            parameter=config.count_bits,
            flags=flags,
            stripe_lengths=(
                [len(payload) for payload in plane_payloads[0]]
                if striped or len(plan) > 1
                else None
            ),
        )
    statistics = merge_statistics([stats for _, stats in results])
    statistics.total_bytes = len(stream)
    sample_count = getattr(image, "sample_count", None) or image.pixel_count
    statistics.bits_per_pixel = 8.0 * len(stream) / sample_count
    return stream, statistics


# ---------------------------------------------------------------------- #
# decode
# ---------------------------------------------------------------------- #


def _decode_cell_task(task: Tuple[bytes, int, int, CodecConfig, str]) -> List[int]:
    """Worker: decode one cell payload into its row-major pixel list.

    Corrupt payloads drive the entropy models into impossible states; for a
    container consumer that is a corrupt bitstream, so
    :class:`~repro.exceptions.ModelStateError` is normalised to
    :class:`~repro.exceptions.BitstreamError` here, inside the worker, and
    propagates identically from the serial and pooled paths.
    """
    payload, width, row_count, config, engine = task
    try:
        return decode_payload(payload, width, row_count, config, engine=engine)
    except ModelStateError as exc:
        raise BitstreamError("corrupt cell payload: %s" % exc) from exc


def decode_one_cell(
    data_or_cell: bytes,
    header: StreamHeader,
    plane: int,
    spec,
    config: CodecConfig,
    engine: str = "reference",
    from_container: bool = True,
) -> np.ndarray:
    """CRC-verify and decode a single (plane, stripe) cell to a row array.

    With ``from_container=True`` (the default) the cell bytes are sliced
    out of the whole container ``data_or_cell``; with ``False`` the caller
    already fetched exactly the cell payload (the store's range-read path).
    """
    if from_container:
        offset, length = component_spans(header)[plane][spec.index]
        cell = data_or_cell[offset : offset + length]
    else:
        cell = data_or_cell
    cell = verify_component_cell(header, plane, spec.index, cell)
    pixels = _decode_cell_task((cell, header.width, spec.row_count, config, engine))
    return np.asarray(pixels, dtype=np.int64).reshape(spec.row_count, header.width)


@dataclass(frozen=True)
class DecodedSelection:
    """The reconstructed sample arrays of one (planes, stripe-range) query."""

    header: StreamHeader
    #: The stripe specs actually decoded (a contiguous slice of the plan).
    plan: tuple
    #: Rows covered by the selection.
    row_count: int
    #: Requested plane index -> ``(row_count, width)`` reconstructed array.
    planes: Dict[int, np.ndarray]

    def plane_image(self, plane: int) -> GrayImage:
        """One requested plane as a :class:`GrayImage`."""
        name = default_plane_names(self.header.component_count)[plane]
        return GrayImage(
            self.header.width,
            self.row_count,
            self.planes[plane].reshape(-1).tolist(),
            self.header.bit_depth,
            name,
        )

    def planar_image(self) -> PlanarImage:
        """All requested planes as a :class:`PlanarImage`."""
        return PlanarImage(
            [self.plane_image(plane) for plane in sorted(self.planes)]
        )

    def image(self) -> Union[GrayImage, PlanarImage]:
        """The selection in the container shape a full decode would yield.

        Grey (version-1/2) streams come back as :class:`GrayImage`,
        version-3 streams — even single-plane ones — as
        :class:`PlanarImage`, matching the historical behaviour of the
        per-path decoders this pipeline replaced.
        """
        if self.header.component_count == 1 and not self.header.component_lengths:
            return self.plane_image(0)
        return self.planar_image()


def decode_selection(
    data: bytes,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    planes: Optional[Sequence[int]] = None,
    stripe_range: Optional[Tuple[int, int]] = None,
    executor=None,
) -> DecodedSelection:
    """Decode any (planes, stripe-range) selection of any container version.

    ``planes=None`` selects every plane; ``stripe_range=None`` every
    stripe.  Only the cells the selection needs are CRC-checked and
    entropy-decoded (on a delta-coded stream the predictor chain extends
    the fetch to planes ``0..max(planes)``, never past it), so the cost of
    a region query is proportional to the region, not the stream.
    Out-of-range ``planes``/``stripe_range`` arguments raise
    :class:`~repro.exceptions.ConfigError`; a corrupt container raises
    :class:`~repro.exceptions.BitstreamError`.
    """
    header = parse_stream_header(data)
    config = resolve_stream_config(header, config)
    plan, requested, needed = select_cells(header, planes, stripe_range)

    spans = component_spans(header)
    tasks = []
    for plane in needed:
        for spec in plan:
            offset, length = spans[plane][spec.index]
            cell = verify_component_cell(
                header, plane, spec.index, data[offset : offset + length]
            )
            tasks.append((cell, header.width, spec.row_count, config, engine))
    cell_pixels = _resolve_map(executor, len(tasks))(_decode_cell_task, tasks)

    row_count = sum(spec.row_count for spec in plan)
    residual_arrays = []
    for index in range(len(needed)):
        pixels: List[int] = []
        for part in cell_pixels[index * len(plan) : (index + 1) * len(plan)]:
            pixels.extend(part)
        residual_arrays.append(
            np.asarray(pixels, dtype=np.int64).reshape(row_count, header.width)
        )
    return assemble_selection(header, plan, requested, needed, residual_arrays)


def select_cells(
    header: StreamHeader,
    planes: Optional[Sequence[int]] = None,
    stripe_range: Optional[Tuple[int, int]] = None,
) -> Tuple[tuple, List[int], List[int]]:
    """Validate a (planes, stripe-range) query against a stream's grid.

    Returns ``(plan, requested, needed)``: the stripe specs of the selected
    range, the plane indices the caller asked for, and the planes that must
    actually be decoded (the delta-predictor chain extends ``requested``
    down to plane 0 on delta-coded streams).  Out-of-range arguments raise
    :class:`~repro.exceptions.ConfigError` — the shared front door for
    every random-access reader, in-memory or stored.
    """
    plan = plan_for_header(header)
    if stripe_range is not None:
        try:
            start, stop = stripe_range
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                "stripe range must be a (start, stop) pair, got %r" % (stripe_range,)
            ) from exc
        if not 0 <= start < stop <= header.stripe_count:
            raise ConfigError(
                "stripe range [%d, %d) outside stream of %d stripe(s)"
                % (start, stop, header.stripe_count)
            )
        plan = plan[start:stop]
    requested = (
        list(range(header.component_count)) if planes is None else list(planes)
    )
    if not requested:
        raise ConfigError("at least one plane must be selected")
    for plane in requested:
        if not 0 <= plane < header.component_count:
            raise ConfigError(
                "plane %d outside stream of %d component(s)"
                % (plane, header.component_count)
            )
    needed = (
        list(range(max(requested) + 1))
        if header.plane_delta
        else sorted(set(requested))
    )
    return tuple(plan), requested, needed


def assemble_selection(
    header: StreamHeader,
    plan: Sequence,
    requested: Sequence[int],
    needed: Sequence[int],
    residual_arrays: Sequence[np.ndarray],
) -> DecodedSelection:
    """Invert the plane delta over decoded residuals and pick the planes asked for.

    ``residual_arrays`` holds one ``(row_count, width)`` array per entry of
    ``needed``, in order — exactly what a cell decoder produces.
    """
    reconstructed = reconstruct_plane_arrays(
        list(residual_arrays), header.bit_depth, header.plane_delta
    )
    by_plane = dict(zip(needed, reconstructed))
    return DecodedSelection(
        header=header,
        plan=tuple(plan),
        row_count=sum(spec.row_count for spec in plan),
        planes={plane: by_plane[plane] for plane in requested},
    )
