"""Compressed-stream container format.

Every codec in this package wraps its entropy-coded payload in the same tiny
container so that streams are self-describing: the decoder can recover the
image geometry, the codec that produced the stream and the configuration
fields it needs to rebuild its adaptive models identically.

Fixed header layout, shared by both container versions (big-endian)::

    offset  size  field
    0       4     magic "RPLC" (RePro Lossless Container)
    4       1     container version (1 or 2)
    5       1     codec id (see CodecId)
    6       4     image width in pixels
    10      4     image height in pixels
    14      1     bit depth
    15      1     codec parameter byte (meaning depends on the codec; the
                  proposed codec stores the frequency-count width here)
    16      1     flags byte (bit 0: hardware-faithful path)
    17      4     payload length in bytes (total across all stripes)
    21      ...   version-dependent, see below

Version 1 — single payload::

    21      ...   payload

Version 2 — striped payload.  The image is split into horizontal stripes
(the balanced partition of :func:`repro.parallel.partition.plan_stripes`),
each stripe coded with *independent* adaptive state so stripes can be
encoded and decoded in parallel, mirroring the paper's multi-core hardware
option.  A stripe table follows the fixed header::

    21      2     stripe count S (1 <= S <= 65535, S <= image height)
    23      4*S   per-stripe payload length in bytes
    23+4S   ...   S concatenated stripe payloads

The payload-length field at offset 17 always holds the total payload size
(the sum of the stripe table entries in version 2), so generic tooling can
skip the payload without understanding the stripe table.

Version-1 streams remain fully readable: :func:`unpack_stream` accepts both
versions and :func:`pack_stream` emits version 1 unless ``stripe_lengths``
is given.

A truncated or corrupted header raises
:class:`~repro.exceptions.HeaderError`; a payload shorter than the declared
length (or an inconsistent stripe table) raises
:class:`~repro.exceptions.BitstreamError`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import BitstreamError, HeaderError

__all__ = [
    "CodecId",
    "StreamHeader",
    "pack_stream",
    "unpack_stream",
    "split_stripe_payloads",
]

MAGIC = b"RPLC"
#: Version written for single-payload streams (and the only version
#: pre-stripe-table readers understand).
CONTAINER_VERSION = 1
#: Version written when a stripe table is present.
STRIPED_CONTAINER_VERSION = 2
SUPPORTED_VERSIONS = (CONTAINER_VERSION, STRIPED_CONTAINER_VERSION)
_HEADER_STRUCT = struct.Struct(">4sBBIIBBBI")
_STRIPE_COUNT_STRUCT = struct.Struct(">H")
_STRIPE_LENGTH_STRUCT = struct.Struct(">I")
MAX_STRIPES = 0xFFFF


class CodecId(enum.IntEnum):
    """Identifies which codec produced a stream."""

    PROPOSED = 1
    PROPOSED_HARDWARE = 2
    JPEG_LS = 3
    SLP = 4
    CALIC = 5
    GENERAL_DATA = 6


@dataclass(frozen=True)
class StreamHeader:
    """Decoded container header."""

    codec: CodecId
    width: int
    height: int
    bit_depth: int
    parameter: int
    flags: int
    payload_length: int
    #: Container version the stream was written with (1 or 2).
    version: int = CONTAINER_VERSION
    #: Per-stripe payload lengths; empty for version-1 streams.
    stripe_lengths: Tuple[int, ...] = ()

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    @property
    def stripe_count(self) -> int:
        """Number of independently coded stripes (1 for version-1 streams)."""
        return len(self.stripe_lengths) if self.stripe_lengths else 1


def pack_stream(
    codec: CodecId,
    width: int,
    height: int,
    bit_depth: int,
    payload: bytes,
    parameter: int = 0,
    flags: int = 0,
    stripe_lengths: Optional[Sequence[int]] = None,
) -> bytes:
    """Assemble a complete container around ``payload``.

    When ``stripe_lengths`` is ``None`` a version-1 container is produced
    (byte-identical to the historical format).  Otherwise a version-2
    container is produced whose stripe table lists the given per-stripe
    payload lengths; they must sum to ``len(payload)``.
    """
    if width <= 0 or height <= 0:
        raise HeaderError("image dimensions must be positive, got %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("bit depth must be in [1, 16], got %d" % bit_depth)
    if not 0 <= parameter <= 255:
        raise HeaderError("parameter byte must fit in 8 bits, got %d" % parameter)
    if not 0 <= flags <= 255:
        raise HeaderError("flags byte must fit in 8 bits, got %d" % flags)
    version = CONTAINER_VERSION
    stripe_table = b""
    if stripe_lengths is not None:
        lengths = [int(length) for length in stripe_lengths]
        if not 1 <= len(lengths) <= MAX_STRIPES:
            raise HeaderError(
                "stripe count must be in [1, %d], got %d" % (MAX_STRIPES, len(lengths))
            )
        if len(lengths) > height:
            raise HeaderError(
                "cannot describe %d stripes for %d image rows" % (len(lengths), height)
            )
        for length in lengths:
            if length < 0:
                raise HeaderError("stripe payload length must be non-negative")
        if sum(lengths) != len(payload):
            raise HeaderError(
                "stripe table sums to %d bytes but payload holds %d"
                % (sum(lengths), len(payload))
            )
        version = STRIPED_CONTAINER_VERSION
        stripe_table = _STRIPE_COUNT_STRUCT.pack(len(lengths)) + b"".join(
            _STRIPE_LENGTH_STRUCT.pack(length) for length in lengths
        )
    header = _HEADER_STRUCT.pack(
        MAGIC,
        version,
        int(codec),
        width,
        height,
        bit_depth,
        parameter,
        flags,
        len(payload),
    )
    return header + stripe_table + payload


def unpack_stream(data: bytes) -> tuple:
    """Split a container into its :class:`StreamHeader` and payload bytes.

    Both container versions are accepted; for version-2 streams the stripe
    table is validated and exposed as ``header.stripe_lengths`` while the
    returned payload is the concatenation of all stripe payloads (use
    :func:`split_stripe_payloads` to slice it).
    """
    if len(data) < _HEADER_STRUCT.size:
        raise HeaderError(
            "stream too short for a container header (%d bytes)" % len(data)
        )
    magic, version, codec_raw, width, height, bit_depth, parameter, flags, length = (
        _HEADER_STRUCT.unpack_from(data)
    )
    if magic != MAGIC:
        raise HeaderError("bad container magic %r" % magic)
    if version not in SUPPORTED_VERSIONS:
        raise HeaderError("unsupported container version %d" % version)
    try:
        codec = CodecId(codec_raw)
    except ValueError as exc:
        raise HeaderError("unknown codec id %d" % codec_raw) from exc
    if width <= 0 or height <= 0:
        raise HeaderError("corrupt dimensions %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("corrupt bit depth %d" % bit_depth)

    offset = _HEADER_STRUCT.size
    stripe_lengths: Tuple[int, ...] = ()
    if version == STRIPED_CONTAINER_VERSION:
        if len(data) < offset + _STRIPE_COUNT_STRUCT.size:
            raise HeaderError("stream truncated inside the stripe table")
        (stripe_count,) = _STRIPE_COUNT_STRUCT.unpack_from(data, offset)
        offset += _STRIPE_COUNT_STRUCT.size
        if stripe_count < 1:
            raise HeaderError("stripe table declares zero stripes")
        if stripe_count > height:
            raise HeaderError(
                "stripe table declares %d stripes for %d image rows"
                % (stripe_count, height)
            )
        table_size = stripe_count * _STRIPE_LENGTH_STRUCT.size
        if len(data) < offset + table_size:
            raise HeaderError("stream truncated inside the stripe table")
        stripe_lengths = tuple(
            _STRIPE_LENGTH_STRUCT.unpack_from(data, offset + i * _STRIPE_LENGTH_STRUCT.size)[0]
            for i in range(stripe_count)
        )
        offset += table_size
        if sum(stripe_lengths) != length:
            raise BitstreamError(
                "stripe table sums to %d bytes but header declares %d"
                % (sum(stripe_lengths), length)
            )

    payload = data[offset:]
    if len(payload) < length:
        raise BitstreamError(
            "payload truncated: header declares %d bytes, %d present"
            % (length, len(payload))
        )
    header = StreamHeader(
        codec=codec,
        width=width,
        height=height,
        bit_depth=bit_depth,
        parameter=parameter,
        flags=flags,
        payload_length=length,
        version=version,
        stripe_lengths=stripe_lengths,
    )
    return header, payload[:length]


def split_stripe_payloads(header: StreamHeader, payload: bytes) -> List[bytes]:
    """Slice the concatenated payload of ``header`` into per-stripe payloads.

    For version-1 headers (no stripe table) the whole payload is returned as
    a single stripe.
    """
    if not header.stripe_lengths:
        return [payload]
    if len(payload) != sum(header.stripe_lengths):
        raise BitstreamError(
            "payload holds %d bytes but the stripe table sums to %d"
            % (len(payload), sum(header.stripe_lengths))
        )
    stripes: List[bytes] = []
    offset = 0
    for length in header.stripe_lengths:
        stripes.append(payload[offset : offset + length])
        offset += length
    return stripes
