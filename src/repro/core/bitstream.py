"""Compressed-stream container format.

Every codec in this package wraps its entropy-coded payload in the same tiny
container so that streams are self-describing: the decoder can recover the
image geometry, the codec that produced the stream and the configuration
fields it needs to rebuild its adaptive models identically.

Fixed header layout, shared by all container versions (big-endian)::

    offset  size  field
    0       4     magic "RPLC" (RePro Lossless Container)
    4       1     container version (1, 2 or 3)
    5       1     codec id (see CodecId)
    6       4     image width in pixels
    10      4     image height in pixels
    14      1     bit depth
    15      1     codec parameter byte (meaning depends on the codec; the
                  proposed codec stores the frequency-count width here)
    16      1     flags byte (bit 0: hardware-faithful path)
    17      4     payload length in bytes (total across all stripes/planes)
    21      ...   version-dependent, see below

Version 1 — single payload::

    21      ...   payload

Version 2 — striped payload.  The image is split into horizontal stripes
(the balanced partition of :func:`repro.parallel.partition.plan_stripes`),
each stripe coded with *independent* adaptive state so stripes can be
encoded and decoded in parallel, mirroring the paper's multi-core hardware
option.  A stripe table follows the fixed header::

    21      2     stripe count S (1 <= S <= 65535, S <= image height)
    23      4*S   per-stripe payload length in bytes
    23+4S   ...   S concatenated stripe payloads

Version 3 — multi-component indexed payload.  The image carries ``C``
co-registered sample planes (RGB, multi-band), every plane is split into
the *same* ``S`` balanced stripes, and each (plane, stripe) cell is an
independent entropy-coded payload.  A component table follows the fixed
header; the per-cell lengths double as a random-access byte-offset index
(offsets are the running sums), so a reader can locate and decode a single
plane (:func:`repro.core.components.decode_plane`) or a stripe range
(:func:`repro.core.components.decode_region`) without touching the rest of
the stream::

    21      1     component count C (1 <= C <= 255)
    22      1     component flags (bit 0: plane k>0 stores the modular
                  delta to plane k-1 — the inter-plane predictor)
    23      2     stripe count S per plane (1 <= S <= 65535, S <= height)
    25      8*C*S per (plane, stripe) cell, plane-major: payload length in
                  bytes (4) then CRC-32 of the cell payload (4)
    25+8CS  ...   C*S concatenated cell payloads, plane-major

The per-cell CRC-32 makes index lies detectable: an entry whose offset or
length points at the wrong bytes fails its checksum before any entropy
decoding happens, so a corrupted index raises ``BitstreamError`` instead of
silently decoding garbage — and a random-access reader still only checksums
the cells it actually touches.

The payload-length field at offset 17 always holds the total payload size
(the sum of the stripe/component table entries in versions 2 and 3), so
generic tooling can skip the payload without understanding the tables.

Older streams remain fully readable: :func:`unpack_stream` accepts all
three versions; :func:`pack_stream` emits version 1 unless
``stripe_lengths`` is given, and :func:`pack_component_stream` emits
version 3.

A truncated or corrupted header raises
:class:`~repro.exceptions.HeaderError`; a payload shorter than the declared
length (or an inconsistent stripe table) raises
:class:`~repro.exceptions.BitstreamError`.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import BitstreamError, HeaderError

__all__ = [
    "CodecId",
    "StreamHeader",
    "pack_stream",
    "pack_component_stream",
    "parse_stream_header",
    "parse_stream_prefix",
    "table_prefix_length",
    "TABLE_PROBE_LENGTH",
    "unpack_stream",
    "split_stripe_payloads",
    "split_component_payloads",
    "component_spans",
    "verify_component_cell",
    "COMPONENT_FLAG_PLANE_DELTA",
]

MAGIC = b"RPLC"
#: Version written for single-payload streams (and the only version
#: pre-stripe-table readers understand).
CONTAINER_VERSION = 1
#: Version written when a stripe table is present.
STRIPED_CONTAINER_VERSION = 2
#: Version written for multi-component streams with a random-access index.
COMPONENT_CONTAINER_VERSION = 3
SUPPORTED_VERSIONS = (
    CONTAINER_VERSION,
    STRIPED_CONTAINER_VERSION,
    COMPONENT_CONTAINER_VERSION,
)
_HEADER_STRUCT = struct.Struct(">4sBBIIBBBI")
_STRIPE_COUNT_STRUCT = struct.Struct(">H")
_STRIPE_LENGTH_STRUCT = struct.Struct(">I")
#: Version-3 table prefix: component count, component flags, stripe count.
_COMPONENT_HEADER_STRUCT = struct.Struct(">BBH")
#: Version-3 index cell: payload length, CRC-32 of the cell payload.
_COMPONENT_CELL_STRUCT = struct.Struct(">II")
MAX_STRIPES = 0xFFFF
MAX_COMPONENTS = 0xFF
#: Component-flags bit: planes after the first store the modular delta to
#: the previous (reconstructed) plane instead of raw samples.
COMPONENT_FLAG_PLANE_DELTA = 0x01


def _check_fixed_fields(
    width: int, height: int, bit_depth: int, parameter: int, flags: int
) -> None:
    """Validate the fields every container version shares."""
    if width <= 0 or height <= 0:
        raise HeaderError("image dimensions must be positive, got %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("bit depth must be in [1, 16], got %d" % bit_depth)
    if not 0 <= parameter <= 255:
        raise HeaderError("parameter byte must fit in 8 bits, got %d" % parameter)
    if not 0 <= flags <= 255:
        raise HeaderError("flags byte must fit in 8 bits, got %d" % flags)


class CodecId(enum.IntEnum):
    """Identifies which codec produced a stream."""

    PROPOSED = 1
    PROPOSED_HARDWARE = 2
    JPEG_LS = 3
    SLP = 4
    CALIC = 5
    GENERAL_DATA = 6


@dataclass(frozen=True)
class StreamHeader:
    """Decoded container header."""

    codec: CodecId
    width: int
    height: int
    bit_depth: int
    parameter: int
    flags: int
    payload_length: int
    #: Container version the stream was written with (1, 2 or 3).
    version: int = CONTAINER_VERSION
    #: Per-stripe payload lengths; empty for version-1 and version-3 streams.
    stripe_lengths: Tuple[int, ...] = ()
    #: Number of image components (planes); 1 for version-1/2 streams.
    component_count: int = 1
    #: Version-3 component flags (see ``COMPONENT_FLAG_*``).
    component_flags: int = 0
    #: Version-3 per-plane, per-stripe payload lengths (plane-major).
    component_lengths: Tuple[Tuple[int, ...], ...] = ()
    #: Version-3 per-plane, per-stripe CRC-32 of each cell payload.
    component_crcs: Tuple[Tuple[int, ...], ...] = ()
    #: Byte offset of the first payload byte inside the container (set by
    #: :func:`unpack_stream`; the random-access index is relative to it).
    payload_offset: int = 0

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    @property
    def stripe_count(self) -> int:
        """Number of independently coded stripes per plane."""
        if self.component_lengths:
            return len(self.component_lengths[0])
        return len(self.stripe_lengths) if self.stripe_lengths else 1

    @property
    def plane_delta(self) -> bool:
        """Whether planes after the first are inter-plane deltas."""
        return bool(self.component_flags & COMPONENT_FLAG_PLANE_DELTA)


def pack_stream(
    codec: CodecId,
    width: int,
    height: int,
    bit_depth: int,
    payload: bytes,
    parameter: int = 0,
    flags: int = 0,
    stripe_lengths: Optional[Sequence[int]] = None,
) -> bytes:
    """Assemble a complete container around ``payload``.

    When ``stripe_lengths`` is ``None`` a version-1 container is produced
    (byte-identical to the historical format).  Otherwise a version-2
    container is produced whose stripe table lists the given per-stripe
    payload lengths; they must sum to ``len(payload)``.
    """
    _check_fixed_fields(width, height, bit_depth, parameter, flags)
    version = CONTAINER_VERSION
    stripe_table = b""
    if stripe_lengths is not None:
        lengths = [int(length) for length in stripe_lengths]
        if not 1 <= len(lengths) <= MAX_STRIPES:
            raise HeaderError(
                "stripe count must be in [1, %d], got %d" % (MAX_STRIPES, len(lengths))
            )
        if len(lengths) > height:
            raise HeaderError(
                "cannot describe %d stripes for %d image rows" % (len(lengths), height)
            )
        for length in lengths:
            if length < 0:
                raise HeaderError("stripe payload length must be non-negative")
        if sum(lengths) != len(payload):
            raise HeaderError(
                "stripe table sums to %d bytes but payload holds %d"
                % (sum(lengths), len(payload))
            )
        version = STRIPED_CONTAINER_VERSION
        stripe_table = _STRIPE_COUNT_STRUCT.pack(len(lengths)) + b"".join(
            _STRIPE_LENGTH_STRUCT.pack(length) for length in lengths
        )
    header = _HEADER_STRUCT.pack(
        MAGIC,
        version,
        int(codec),
        width,
        height,
        bit_depth,
        parameter,
        flags,
        len(payload),
    )
    return header + stripe_table + payload


def pack_component_stream(
    codec: CodecId,
    width: int,
    height: int,
    bit_depth: int,
    plane_payloads: Sequence[Sequence[bytes]],
    parameter: int = 0,
    flags: int = 0,
    component_flags: int = 0,
) -> bytes:
    """Assemble a version-3 container around per-(plane, stripe) payloads.

    ``plane_payloads`` holds one sequence of stripe payloads per component
    plane; every plane must carry the same number of stripes (the planes
    share one partition).  The component table written after the fixed
    header doubles as the random-access index.
    """
    _check_fixed_fields(width, height, bit_depth, parameter, flags)
    if not 0 <= component_flags <= 255:
        raise HeaderError(
            "component flags byte must fit in 8 bits, got %d" % component_flags
        )
    planes = [list(stripe_payloads) for stripe_payloads in plane_payloads]
    if not 1 <= len(planes) <= MAX_COMPONENTS:
        raise HeaderError(
            "component count must be in [1, %d], got %d" % (MAX_COMPONENTS, len(planes))
        )
    stripe_count = len(planes[0])
    if not 1 <= stripe_count <= MAX_STRIPES:
        raise HeaderError(
            "stripe count must be in [1, %d], got %d" % (MAX_STRIPES, stripe_count)
        )
    if stripe_count > height:
        raise HeaderError(
            "cannot describe %d stripes for %d image rows" % (stripe_count, height)
        )
    for index, stripe_payloads in enumerate(planes):
        if len(stripe_payloads) != stripe_count:
            raise HeaderError(
                "plane %d holds %d stripes but plane 0 holds %d"
                % (index, len(stripe_payloads), stripe_count)
            )
    table = _COMPONENT_HEADER_STRUCT.pack(len(planes), component_flags, stripe_count)
    cells = [cell for stripe_payloads in planes for cell in stripe_payloads]
    table += b"".join(
        _COMPONENT_CELL_STRUCT.pack(len(cell), zlib.crc32(cell) & 0xFFFFFFFF)
        for cell in cells
    )
    payload = b"".join(cells)
    header = _HEADER_STRUCT.pack(
        MAGIC,
        COMPONENT_CONTAINER_VERSION,
        int(codec),
        width,
        height,
        bit_depth,
        parameter,
        flags,
        len(payload),
    )
    return header + table + payload


def parse_stream_header(data: bytes) -> StreamHeader:
    """Parse and validate a container's header and tables — no payload copy.

    Performs every structural check :func:`unpack_stream` does (magic,
    version, geometry, table consistency, exact framing) but never
    materialises the payload bytes, so header-only consumers — the
    random-access decoders, ``stream_index``, version sniffing — stay O(1)
    in the payload size and slice the cells they need straight out of
    ``data`` via :func:`component_spans`.
    """
    return _parse_stream(data, len(data))


def parse_stream_prefix(prefix: bytes, total_length: int) -> StreamHeader:
    """Parse a container from a *prefix* holding the header and tables.

    Identical validation to :func:`parse_stream_header`, but the framing
    check (payload neither truncated nor followed by trailing garbage) is
    made against ``total_length`` — the byte size of the full container —
    instead of ``len(prefix)``.  This is what lets range-read consumers
    like :mod:`repro.store` index a blob after fetching only its first few
    hundred bytes: fetch a prefix covering the tables (see
    :func:`table_prefix_length`), then slice individual cells by offset.
    """
    return _parse_stream(prefix, total_length)


def table_prefix_length(prefix: bytes) -> int:
    """Bytes needed from the start of a container to cover header + tables.

    ``prefix`` must hold at least ``TABLE_PROBE_LENGTH`` bytes (or the whole
    container, if it is shorter than that): enough to read the version byte
    and the stripe/component counts the table size depends on.  Raises
    :class:`~repro.exceptions.HeaderError` on a malformed prefix, like the
    parsers would.
    """
    if len(prefix) < _HEADER_STRUCT.size:
        raise HeaderError(
            "stream too short for a container header (%d bytes)" % len(prefix)
        )
    version = prefix[4]
    if version == CONTAINER_VERSION:
        return _HEADER_STRUCT.size
    if version == STRIPED_CONTAINER_VERSION:
        if len(prefix) < _HEADER_STRUCT.size + _STRIPE_COUNT_STRUCT.size:
            raise HeaderError("stream truncated inside the stripe table")
        (stripes,) = _STRIPE_COUNT_STRUCT.unpack_from(prefix, _HEADER_STRUCT.size)
        return (
            _HEADER_STRUCT.size
            + _STRIPE_COUNT_STRUCT.size
            + stripes * _STRIPE_LENGTH_STRUCT.size
        )
    if version == COMPONENT_CONTAINER_VERSION:
        if len(prefix) < _HEADER_STRUCT.size + _COMPONENT_HEADER_STRUCT.size:
            raise HeaderError("stream truncated inside the component table")
        components, _flags, stripes = _COMPONENT_HEADER_STRUCT.unpack_from(
            prefix, _HEADER_STRUCT.size
        )
        return (
            _HEADER_STRUCT.size
            + _COMPONENT_HEADER_STRUCT.size
            + components * stripes * _COMPONENT_CELL_STRUCT.size
        )
    raise HeaderError(
        "unsupported container version %d (this reader understands versions %s)"
        % (version, ", ".join(str(v) for v in SUPPORTED_VERSIONS))
    )


#: Prefix bytes that always suffice for :func:`table_prefix_length`: the
#: fixed header plus the largest version-dependent count prefix (v3's).
TABLE_PROBE_LENGTH = _HEADER_STRUCT.size + _COMPONENT_HEADER_STRUCT.size


def _parse_stream(data: bytes, total_length: int) -> StreamHeader:
    if len(data) < _HEADER_STRUCT.size:
        raise HeaderError(
            "stream too short for a container header (%d bytes)" % len(data)
        )
    magic, version, codec_raw, width, height, bit_depth, parameter, flags, length = (
        _HEADER_STRUCT.unpack_from(data)
    )
    if magic != MAGIC:
        raise HeaderError("bad container magic %r" % magic)
    if version not in SUPPORTED_VERSIONS:
        raise HeaderError(
            "unsupported container version %d (this reader understands versions %s)"
            % (version, ", ".join(str(v) for v in SUPPORTED_VERSIONS))
        )
    try:
        codec = CodecId(codec_raw)
    except ValueError as exc:
        raise HeaderError("unknown codec id %d" % codec_raw) from exc
    if width <= 0 or height <= 0:
        raise HeaderError("corrupt dimensions %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("corrupt bit depth %d" % bit_depth)

    offset = _HEADER_STRUCT.size
    stripe_lengths: Tuple[int, ...] = ()
    component_count = 1
    component_flags = 0
    component_lengths: Tuple[Tuple[int, ...], ...] = ()
    component_crcs: Tuple[Tuple[int, ...], ...] = ()
    if version == STRIPED_CONTAINER_VERSION:
        if len(data) < offset + _STRIPE_COUNT_STRUCT.size:
            raise HeaderError("stream truncated inside the stripe table")
        (stripe_count,) = _STRIPE_COUNT_STRUCT.unpack_from(data, offset)
        offset += _STRIPE_COUNT_STRUCT.size
        if stripe_count < 1:
            raise HeaderError("stripe table declares zero stripes")
        if stripe_count > height:
            raise HeaderError(
                "stripe table declares %d stripes for %d image rows"
                % (stripe_count, height)
            )
        table_size = stripe_count * _STRIPE_LENGTH_STRUCT.size
        if len(data) < offset + table_size:
            raise HeaderError("stream truncated inside the stripe table")
        stripe_lengths = tuple(
            _STRIPE_LENGTH_STRUCT.unpack_from(data, offset + i * _STRIPE_LENGTH_STRUCT.size)[0]
            for i in range(stripe_count)
        )
        offset += table_size
        if sum(stripe_lengths) != length:
            raise BitstreamError(
                "stripe table sums to %d bytes but header declares %d"
                % (sum(stripe_lengths), length)
            )
    elif version == COMPONENT_CONTAINER_VERSION:
        if len(data) < offset + _COMPONENT_HEADER_STRUCT.size:
            raise HeaderError("stream truncated inside the component table")
        component_count, component_flags, stripe_count = (
            _COMPONENT_HEADER_STRUCT.unpack_from(data, offset)
        )
        offset += _COMPONENT_HEADER_STRUCT.size
        if component_count < 1:
            raise HeaderError("component table declares zero components")
        if stripe_count < 1:
            raise HeaderError("component table declares zero stripes")
        if stripe_count > height:
            raise HeaderError(
                "component table declares %d stripes for %d image rows"
                % (stripe_count, height)
            )
        cell_count = component_count * stripe_count
        table_size = cell_count * _COMPONENT_CELL_STRUCT.size
        if len(data) < offset + table_size:
            raise HeaderError("stream truncated inside the component table")
        cells = [
            _COMPONENT_CELL_STRUCT.unpack_from(data, offset + i * _COMPONENT_CELL_STRUCT.size)
            for i in range(cell_count)
        ]
        offset += table_size
        component_lengths = tuple(
            tuple(cell[0] for cell in cells[plane * stripe_count : (plane + 1) * stripe_count])
            for plane in range(component_count)
        )
        component_crcs = tuple(
            tuple(cell[1] for cell in cells[plane * stripe_count : (plane + 1) * stripe_count])
            for plane in range(component_count)
        )
        total = sum(cell[0] for cell in cells)
        if total != length:
            raise BitstreamError(
                "component table sums to %d bytes but header declares %d"
                % (total, length)
            )

    present = total_length - offset
    if present < length:
        raise BitstreamError(
            "payload truncated: header declares %d bytes, %d present"
            % (length, present)
        )
    if present > length:
        # A container holds exactly its declared payload.  Trailing bytes
        # mean the stream was corrupted or mis-framed — most importantly, a
        # flipped version byte makes a later version's table parse as
        # payload, which this check turns into a loud error instead of a
        # silent garbage decode.
        raise BitstreamError(
            "trailing garbage: header declares %d payload bytes but %d follow "
            "the tables" % (length, present)
        )
    return StreamHeader(
        codec=codec,
        width=width,
        height=height,
        bit_depth=bit_depth,
        parameter=parameter,
        flags=flags,
        payload_length=length,
        version=version,
        stripe_lengths=stripe_lengths,
        component_count=component_count,
        component_flags=component_flags,
        component_lengths=component_lengths,
        component_crcs=component_crcs,
        payload_offset=offset,
    )


def unpack_stream(data: bytes) -> tuple:
    """Split a container into its :class:`StreamHeader` and payload bytes.

    All three container versions are accepted; the stripe table (version 2)
    or component table (version 3) is validated and exposed through
    ``header.stripe_lengths`` / ``header.component_lengths`` while the
    returned payload is the concatenation of all cell payloads (use
    :func:`split_stripe_payloads` / :func:`split_component_payloads` to
    slice it).  Callers that never need the payload bytes should prefer
    :func:`parse_stream_header`, which skips the copy.
    """
    header = parse_stream_header(data)
    # parse_stream_header guarantees exact framing, so this single slice is
    # precisely the declared payload.
    return header, data[header.payload_offset :]


def split_stripe_payloads(header: StreamHeader, payload: bytes) -> List[bytes]:
    """Slice the concatenated payload of ``header`` into per-stripe payloads.

    For version-1 headers (no stripe table) the whole payload is returned as
    a single stripe.
    """
    if not header.stripe_lengths:
        return [payload]
    if len(payload) != sum(header.stripe_lengths):
        raise BitstreamError(
            "payload holds %d bytes but the stripe table sums to %d"
            % (len(payload), sum(header.stripe_lengths))
        )
    stripes: List[bytes] = []
    offset = 0
    for length in header.stripe_lengths:
        stripes.append(payload[offset : offset + length])
        offset += length
    return stripes


def _cell_lengths(header: StreamHeader) -> List[List[int]]:
    """Per-plane, per-stripe payload lengths for any container version."""
    if header.component_lengths:
        return [list(lengths) for lengths in header.component_lengths]
    if header.stripe_lengths:
        return [list(header.stripe_lengths)]
    return [[header.payload_length]]


def verify_component_cell(
    header: StreamHeader, plane: int, stripe: int, cell: bytes
) -> bytes:
    """Checksum one (plane, stripe) cell payload against the version-3 index.

    Returns the cell unchanged on success and raises
    :class:`~repro.exceptions.BitstreamError` on mismatch, so random-access
    readers can verify exactly the cells they touch.  Headers without a CRC
    index (versions 1 and 2) pass through unchecked.
    """
    if not header.component_crcs:
        return cell
    expected = header.component_crcs[plane][stripe]
    actual = zlib.crc32(cell) & 0xFFFFFFFF
    if actual != expected:
        raise BitstreamError(
            "component index CRC mismatch for plane %d stripe %d "
            "(index says %08x, payload bytes give %08x); the index or the "
            "payload is corrupt" % (plane, stripe, expected, actual)
        )
    return cell


def split_component_payloads(header: StreamHeader, payload: bytes) -> List[List[bytes]]:
    """Slice the concatenated payload into per-plane, per-stripe payloads.

    Works for every container version: version-1 streams yield one plane
    holding one stripe, version-2 streams one plane holding each stripe, and
    version-3 streams their full plane-major grid (each cell checked
    against its index CRC).
    """
    lengths = _cell_lengths(header)
    total = sum(sum(plane) for plane in lengths)
    if len(payload) != total:
        raise BitstreamError(
            "payload holds %d bytes but the component table sums to %d"
            % (len(payload), total)
        )
    planes: List[List[bytes]] = []
    offset = 0
    for plane, plane_lengths in enumerate(lengths):
        stripes: List[bytes] = []
        for stripe, length in enumerate(plane_lengths):
            stripes.append(
                verify_component_cell(
                    header, plane, stripe, payload[offset : offset + length]
                )
            )
            offset += length
        planes.append(stripes)
    return planes


def component_spans(header: StreamHeader) -> List[List[Tuple[int, int]]]:
    """Absolute ``(offset, length)`` of every (plane, stripe) cell.

    Offsets are relative to the start of the container (``data[offset :
    offset + length]`` is the cell payload), derived from the running sums
    of the length index — this is the O(1) random-access map that
    ``decode_plane`` / ``decode_region`` use to touch only the bytes they
    need.  Works for every container version.
    """
    spans: List[List[Tuple[int, int]]] = []
    offset = header.payload_offset
    for plane_lengths in _cell_lengths(header):
        plane_spans: List[Tuple[int, int]] = []
        for length in plane_lengths:
            plane_spans.append((offset, length))
            offset += length
        spans.append(plane_spans)
    return spans
