"""Compressed-stream container format.

Every codec in this package wraps its entropy-coded payload in the same tiny
container so that streams are self-describing: the decoder can recover the
image geometry, the codec that produced the stream and the configuration
fields it needs to rebuild its adaptive models identically.

Layout (big-endian)::

    offset  size  field
    0       4     magic "RPLC" (RePro Lossless Container)
    4       1     container version (currently 1)
    5       1     codec id (see CodecId)
    6       4     image width in pixels
    10      4     image height in pixels
    14      1     bit depth
    15      1     codec parameter byte (meaning depends on the codec; the
                  proposed codec stores the frequency-count width here)
    16      1     flags byte (bit 0: hardware-faithful path)
    17      4     payload length in bytes
    21      ...   payload

A truncated or corrupted header raises
:class:`~repro.exceptions.HeaderError`; a payload shorter than the declared
length raises :class:`~repro.exceptions.BitstreamError`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.exceptions import BitstreamError, HeaderError

__all__ = ["CodecId", "StreamHeader", "pack_stream", "unpack_stream"]

MAGIC = b"RPLC"
CONTAINER_VERSION = 1
_HEADER_STRUCT = struct.Struct(">4sBBIIBBBI")


class CodecId(enum.IntEnum):
    """Identifies which codec produced a stream."""

    PROPOSED = 1
    PROPOSED_HARDWARE = 2
    JPEG_LS = 3
    SLP = 4
    CALIC = 5
    GENERAL_DATA = 6


@dataclass(frozen=True)
class StreamHeader:
    """Decoded container header."""

    codec: CodecId
    width: int
    height: int
    bit_depth: int
    parameter: int
    flags: int
    payload_length: int

    @property
    def pixel_count(self) -> int:
        return self.width * self.height


def pack_stream(
    codec: CodecId,
    width: int,
    height: int,
    bit_depth: int,
    payload: bytes,
    parameter: int = 0,
    flags: int = 0,
) -> bytes:
    """Assemble a complete container around ``payload``."""
    if width <= 0 or height <= 0:
        raise HeaderError("image dimensions must be positive, got %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("bit depth must be in [1, 16], got %d" % bit_depth)
    if not 0 <= parameter <= 255:
        raise HeaderError("parameter byte must fit in 8 bits, got %d" % parameter)
    if not 0 <= flags <= 255:
        raise HeaderError("flags byte must fit in 8 bits, got %d" % flags)
    header = _HEADER_STRUCT.pack(
        MAGIC,
        CONTAINER_VERSION,
        int(codec),
        width,
        height,
        bit_depth,
        parameter,
        flags,
        len(payload),
    )
    return header + payload


def unpack_stream(data: bytes) -> tuple:
    """Split a container into its :class:`StreamHeader` and payload bytes."""
    if len(data) < _HEADER_STRUCT.size:
        raise HeaderError(
            "stream too short for a container header (%d bytes)" % len(data)
        )
    magic, version, codec_raw, width, height, bit_depth, parameter, flags, length = (
        _HEADER_STRUCT.unpack_from(data)
    )
    if magic != MAGIC:
        raise HeaderError("bad container magic %r" % magic)
    if version != CONTAINER_VERSION:
        raise HeaderError("unsupported container version %d" % version)
    try:
        codec = CodecId(codec_raw)
    except ValueError as exc:
        raise HeaderError("unknown codec id %d" % codec_raw) from exc
    if width <= 0 or height <= 0:
        raise HeaderError("corrupt dimensions %dx%d" % (width, height))
    if not 1 <= bit_depth <= 16:
        raise HeaderError("corrupt bit depth %d" % bit_depth)
    payload = data[_HEADER_STRUCT.size :]
    if len(payload) < length:
        raise BitstreamError(
            "payload truncated: header declares %d bytes, %d present"
            % (length, len(payload))
        )
    header = StreamHeader(
        codec=codec,
        width=width,
        height=height,
        bit_depth=bit_depth,
        parameter=parameter,
        flags=flags,
        payload_length=length,
    )
    return header, payload[:length]
