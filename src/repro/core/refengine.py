"""The reference coding engine — the paper-shaped per-pixel pipeline.

This module is the registry home of ``engine="reference"``: the per-pixel
encode/decode loops that used to live inline in :mod:`repro.core.encoder`
and :mod:`repro.core.decoder`, structured exactly like the architecture of
Figure 3.  Model the pixel from causal data (prediction, contexts, error
feedback), map the prediction error to a non-negative symbol, hand the
symbol to the probability estimator which drives the binary arithmetic
coder, then commit the pixel to the adaptive state.  The decoder performs
the mirror image of every step, which is what makes the scheme lossless.

The engine codes exactly one cell (one stripe of one plane, fresh adaptive
state); striping, planes and containers are the cell-grid pipeline's job
(:mod:`repro.core.cellgrid`).  Importing this module registers the engine;
:func:`repro.core.interface.get_engine` does so lazily on first lookup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.core.config import CodecConfig
from repro.core.interface import EngineBackend, register_engine
from repro.core.mapping import map_error, unmap_error
from repro.core.modeling import ImageModeler
from repro.core.probability import ProbabilityEstimator
from repro.entropy.binary_arithmetic import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
)
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitReader, BitWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.encoder import EncodeStatistics

__all__ = ["ReferenceEngine"]


class ReferenceEngine(EngineBackend):
    """The per-pixel reference implementation of the coding pipeline."""

    name = "reference"

    def encode_payload(
        self, image: GrayImage, config: CodecConfig
    ) -> "Tuple[bytes, EncodeStatistics]":
        from repro.core.encoder import EncodeStatistics

        modeler = ImageModeler(image.width, config)
        estimator = ProbabilityEstimator(config)
        writer = BitWriter()
        coder = BinaryArithmeticEncoder(writer, precision=config.coder_precision)

        bit_depth = config.bit_depth
        width = image.width
        height = image.height
        pixels = image.pixels()

        index = 0
        for _y in range(height):
            for x in range(width):
                value = pixels[index]
                index += 1
                model = modeler.model_pixel(x)
                symbol, wrapped_error = map_error(value, model.adjusted, bit_depth)
                estimator.encode_symbol(coder, model.context.energy, symbol)
                modeler.commit_pixel(value, wrapped_error, model)
            modeler.end_row()

        coder.finish()
        payload = writer.getvalue()

        statistics = EncodeStatistics(
            payload_bytes=len(payload),
            escapes=estimator.statistics.escapes,
            tree_rescales=estimator.statistics.tree_rescales,
            binary_decisions=estimator.statistics.binary_decisions,
            context_usage={
                context: count
                for context, count in enumerate(estimator.statistics.symbols_per_context)
                if count
            },
            bias_saturations=modeler.bias.rescale_events,
        )
        return payload, statistics

    def decode_payload(
        self, payload: bytes, width: int, height: int, config: CodecConfig
    ) -> List[int]:
        modeler = ImageModeler(width, config)
        estimator = ProbabilityEstimator(config)
        reader = BitReader(payload, max_phantom_bits=4 * config.coder_precision)
        coder = BinaryArithmeticDecoder(reader, precision=config.coder_precision)

        bit_depth = config.bit_depth
        pixels: List[int] = []
        for _y in range(height):
            for x in range(width):
                model = modeler.model_pixel(x)
                symbol = estimator.decode_symbol(coder, model.context.energy)
                value, wrapped_error = unmap_error(symbol, model.adjusted, bit_depth)
                modeler.commit_pixel(value, wrapped_error, model)
                pixels.append(value)
            modeler.end_row()
        return pixels


register_engine(ReferenceEngine())
