"""Abstract interfaces shared by every codec in the package.

Two pluggable seams live here:

* :class:`LosslessImageCodec` — the whole-image codec interface implemented
  by the proposed codec and all three baselines (JPEG-LS, SLP, CALIC); it is
  what allows the Table 1 benchmark harness, the CLI and the universal
  compressor to treat them interchangeably.

* :class:`EngineBackend` — the *coding-engine* interface behind the proposed
  codec: an engine turns one cell (a grey-scale image with fresh adaptive
  state) into an entropy-coded payload and back.  Engines register
  themselves under a name via :func:`register_engine`; every front-end
  (:class:`~repro.core.codec.ProposedCodec`,
  :class:`~repro.parallel.codec.ParallelCodec`, the functional
  ``encode_*``/``decode_*`` helpers and the CLI) dispatches through
  :func:`get_engine`, so third-party engines plug in without touching any
  dispatch site.  The built-in engines — ``"reference"`` (the paper-shaped
  per-pixel pipeline of :mod:`repro.core.refengine`), ``"fast"`` (the
  vectorized engine of :mod:`repro.fast`) and ``"native"`` (the
  build-optional numba-JIT kernels of :mod:`repro.native`, listed and
  dispatchable only where numba is importable) — are registered lazily on
  first lookup, keeping import costs where they were.

Every registered engine must produce **byte-identical** payloads for the
same input: the engine name is a speed knob, not a format choice, and the
conformance suites enforce this for both built-ins.
"""

from __future__ import annotations

import abc
import importlib.util
import os
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, Tuple, Union, overload

from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.config import CodecConfig
    from repro.core.encoder import EncodeStatistics

__all__ = [
    "LosslessImageCodec",
    "EngineBackend",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "ENGINES",
    "require_engine",
]


class EngineBackend(abc.ABC):
    """One interchangeable coding engine of the proposed codec.

    An engine implements the container-less inner codec: it codes exactly
    one cell — a grey-scale image (possibly a single stripe of a larger
    plane) starting from fresh adaptive state — and decodes such a payload
    back into its row-major pixel list.  The cell-grid pipeline
    (:mod:`repro.core.cellgrid`) composes engines with striping, planes and
    the process pool; engines never see containers.

    Implementations must be byte-identical to the reference engine and,
    when used with the process-pool executor, picklable (a module-level
    instance of a module-level class is sufficient).
    """

    #: Registry name (``engine="<name>"`` everywhere).
    name: str = "abstract"

    @abc.abstractmethod
    def encode_payload(
        self, image: GrayImage, config: "CodecConfig"
    ) -> Tuple[bytes, "EncodeStatistics"]:
        """Code one cell; return ``(payload, statistics)``."""

    @abc.abstractmethod
    def decode_payload(
        self, payload: bytes, width: int, height: int, config: "CodecConfig"
    ) -> List[int]:
        """Invert :meth:`encode_payload` into the row-major pixel list."""

    def __repr__(self) -> str:
        return "<%s name=%r>" % (type(self).__name__, self.name)


#: Engines registered so far, by name.  Mutated only through
#: :func:`register_engine` / :func:`unregister_engine`.
_ENGINE_REGISTRY: Dict[str, EngineBackend] = {}

#: Built-in engines: name -> (module, backend class).  Resolved lazily so
#: that ``import repro`` does not pay for numpy-heavy engine code paths the
#: process never uses; the modules also self-register on import.
_BUILTIN_ENGINE_MODULES = {
    "reference": ("repro.core.refengine", "ReferenceEngine"),
    "fast": ("repro.fast.backend", "FastEngine"),
    "native": ("repro.native.backend", "NativeEngine"),
}


def _native_engine_available() -> bool:
    """Availability gate for the build-optional ``native`` engine.

    True when numba is importable (the kernels JIT-compile) or when
    ``REPRO_NATIVE_PURE_PYTHON=1`` opts into the interpreted fallback (the
    without-numba CI leg's byte-identity mode).  Checked without importing
    :mod:`repro.native`, so the probe stays cheap on every
    :func:`engine_names` call.
    """
    if os.environ.get("REPRO_NATIVE_PURE_PYTHON", "") not in ("", "0"):
        return True
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # pragma: no cover - broken namespace pkg
        return False


def register_engine(backend: EngineBackend, replace: bool = False) -> EngineBackend:
    """Register ``backend`` under ``backend.name``; returns it unchanged.

    This is the extension point for third-party engines: register an
    :class:`EngineBackend` instance and every front-end (codecs, functional
    helpers, CLI ``--engine``) accepts its name immediately.  Registering a
    name twice raises :class:`~repro.exceptions.ConfigError` unless
    ``replace=True``, so accidental shadowing of a built-in stays loud.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigError("engine backends must carry a non-empty string name")
    if not replace and name in _ENGINE_REGISTRY:
        raise ConfigError(
            "engine %r is already registered; pass replace=True to shadow it" % name
        )
    _ENGINE_REGISTRY[name] = backend
    return backend


def unregister_engine(name: str) -> None:
    """Remove a registered engine (built-ins re-register on next lookup)."""
    _ENGINE_REGISTRY.pop(name, None)


def get_engine(name: str) -> EngineBackend:
    """Look an engine up by name, importing built-in backends on demand."""
    backend = _ENGINE_REGISTRY.get(name)
    if backend is not None:
        return backend
    if name == "native" and not _native_engine_available():
        raise ConfigError(
            "engine 'native' needs the optional numba dependency, which is not "
            "installed (pip install numba); the 'fast' engine is the fastest "
            "pure-Python alternative and produces byte-identical streams"
        )
    builtin = _BUILTIN_ENGINE_MODULES.get(name)
    if builtin is not None:
        import importlib

        module_name, class_name = builtin
        module = importlib.import_module(module_name)  # self-registers on import
        backend = _ENGINE_REGISTRY.get(name)
        if backend is None:
            # The module was already imported but the entry was unregistered
            # since: rebuild the backend from its class.
            backend = register_engine(getattr(module, class_name)(), replace=True)
        return backend
    raise ConfigError(
        "unknown engine %r; expected one of %s" % (name, ", ".join(engine_names()))
    )


def engine_names() -> Tuple[str, ...]:
    """All dispatchable engine names: built-ins first, then third-party.

    The build-optional ``native`` engine is listed only when it would
    actually dispatch (numba importable, already registered, or the
    pure-Python test opt-in), so CLIs and benchmarks iterating this list
    degrade gracefully on installs without numba.
    """
    names = dict.fromkeys(_BUILTIN_ENGINE_MODULES)
    if "native" not in _ENGINE_REGISTRY and not _native_engine_available():
        names.pop("native", None)
    names.update(dict.fromkeys(_ENGINE_REGISTRY))
    return tuple(names)


class _EngineNames(Sequence[str]):
    """Live, sequence-shaped view of :func:`engine_names`.

    Kept for backwards compatibility with the historical ``ENGINES`` tuple:
    iteration, ``in`` tests and ``argparse`` ``choices=`` keep working, but
    the view also reflects engines registered after import.
    """

    @overload
    def __getitem__(self, index: int) -> str: ...

    @overload
    def __getitem__(self, index: slice) -> Tuple[str, ...]: ...

    def __getitem__(self, index: Union[int, slice]) -> Union[str, Tuple[str, ...]]:
        return engine_names()[index]

    def __len__(self) -> int:
        return len(engine_names())

    def __iter__(self) -> Iterator[str]:
        return iter(engine_names())

    def __contains__(self, name: object) -> bool:
        return name in engine_names()

    def __repr__(self) -> str:
        return repr(engine_names())


#: The dispatchable coding engines (live view over the registry).  All of
#: them produce byte-identical bitstreams; the name is a speed knob, not a
#: format choice.
ENGINES: Sequence[str] = _EngineNames()


def require_engine(engine: str) -> str:
    """Validate an ``engine=`` argument; returns the name unchanged."""
    get_engine(engine)
    return engine


class LosslessImageCodec(abc.ABC):
    """A lossless grey-scale image codec.

    Implementations must guarantee that ``decode(encode(image)) == image``
    for every image whose bit depth they support; the integration test-suite
    enforces this for every registered codec.
    """

    #: Short machine-readable identifier (used by the bitstream container and
    #: the benchmark tables).
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, image: GrayImage) -> bytes:
        """Compress ``image`` into a self-contained byte string."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> GrayImage:
        """Reconstruct the exact image from :meth:`encode` output."""

    def bits_per_pixel(self, image: GrayImage) -> float:
        """Convenience helper: compress ``image`` and return the bit rate."""
        compressed = self.encode(image)
        return 8.0 * len(compressed) / image.pixel_count

    def __repr__(self) -> str:
        return "<%s name=%r>" % (type(self).__name__, self.name)
