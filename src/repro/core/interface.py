"""Abstract interface shared by every lossless image codec in the package.

The proposed codec and all three baselines (JPEG-LS, SLP, CALIC) implement
this interface, which is what allows the Table 1 benchmark harness, the CLI
and the universal compressor to treat them interchangeably.
"""

from __future__ import annotations

import abc

from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage

__all__ = ["LosslessImageCodec", "ENGINES", "require_engine"]

#: The two interchangeable coding engines of the proposed codec.  Both
#: produce byte-identical bitstreams; "fast" trades the paper-shaped
#: per-pixel pipeline for a vectorized front-end and an inlined back-end.
ENGINES = ("reference", "fast")


def require_engine(engine: str) -> str:
    """Validate an ``engine=`` argument; returns the name unchanged."""
    if engine not in ENGINES:
        raise ConfigError(
            "unknown engine %r; expected one of %s" % (engine, ", ".join(ENGINES))
        )
    return engine


class LosslessImageCodec(abc.ABC):
    """A lossless grey-scale image codec.

    Implementations must guarantee that ``decode(encode(image)) == image``
    for every image whose bit depth they support; the integration test-suite
    enforces this for every registered codec.
    """

    #: Short machine-readable identifier (used by the bitstream container and
    #: the benchmark tables).
    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, image: GrayImage) -> bytes:
        """Compress ``image`` into a self-contained byte string."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> GrayImage:
        """Reconstruct the exact image from :meth:`encode` output."""

    def bits_per_pixel(self, image: GrayImage) -> float:
        """Convenience helper: compress ``image`` and return the bit rate."""
        compressed = self.encode(image)
        return 8.0 * len(compressed) / image.pixel_count

    def __repr__(self) -> str:
        return "<%s name=%r>" % (type(self).__name__, self.name)
