"""The image modelling module (Section III, Figure 3 of the paper).

This module ties the prediction, context-modelling and error-feedback stages
together into the per-pixel operation both the encoder and the decoder
perform.  Keeping it in one class guarantees the two sides derive exactly the
same prediction, context index and adjusted prediction from the same causal
data — which is what makes the codec lossless.

The hardware splits the work into two pipelined "lines" (Line 1 works on the
current symbol, Line 2 pre-computes the prediction and context of the next
symbol).  Functionally the split does not change the result, only the
schedule, so the software model exposes a single :meth:`model_pixel` step;
the cycle-level behaviour of the two lines is modelled separately by
:mod:`repro.hardware.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bias import BiasCorrector
from repro.core.config import CodecConfig
from repro.core.context import ContextDescriptor, ContextModeler
from repro.core.neighborhood import Neighborhood, ThreeRowWindow
from repro.core.predictor import GradientAdjustedPredictor

__all__ = ["PixelModel", "ImageModeler"]


@dataclass(frozen=True)
class PixelModel:
    """Everything the modelling stage derives for one pixel position."""

    #: Causal neighbourhood used for this pixel.
    neighbors: Neighborhood
    #: Primary (GAP) prediction X̂.
    predicted: int
    #: Adjusted prediction X̃ = X̂ + ē after error feedback.
    adjusted: int
    #: Full context descriptor (texture, QE, compound index).
    context: ContextDescriptor
    #: Horizontal and vertical gradient magnitudes.
    dh: int
    dv: int


class ImageModeler:
    """Stateful per-image modelling pipeline shared by encoder and decoder.

    Usage pattern (identical on both sides)::

        modeler = ImageModeler(width, config)
        for each pixel in raster order:
            model = modeler.model_pixel(x)        # uses only causal data
            ... code or decode the mapped error in context model.context ...
            modeler.commit_pixel(value, wrapped_error, model)
        modeler.end_row()                          # after each row
    """

    def __init__(self, width: int, config: CodecConfig) -> None:
        self._config = config
        self._window = ThreeRowWindow(width, default=(config.max_sample + 1) // 2)
        self._predictor = GradientAdjustedPredictor(config)
        self._contexts = ContextModeler(config)
        self._bias = BiasCorrector(config)
        self._previous_error = 0

    # ------------------------------------------------------------------ #
    # per-pixel pipeline
    # ------------------------------------------------------------------ #

    def model_pixel(self, x: int) -> PixelModel:
        """Derive prediction, context and adjusted prediction for column ``x``."""
        neighbors = self._window.neighborhood(x)
        prediction = self._predictor.predict(neighbors)
        descriptor = self._contexts.describe(
            neighbors,
            prediction.predicted,
            prediction.dh,
            prediction.dv,
            self._previous_error,
        )
        adjusted = self._bias.adjusted_prediction(descriptor.compound, prediction.predicted)
        return PixelModel(
            neighbors=neighbors,
            predicted=prediction.predicted,
            adjusted=adjusted,
            context=descriptor,
            dh=prediction.dh,
            dv=prediction.dv,
        )

    def commit_pixel(self, value: int, wrapped_error: int, model: PixelModel) -> None:
        """Fold the (de)coded pixel back into the adaptive state."""
        self._bias.update(model.context.compound, wrapped_error)
        self._previous_error = wrapped_error
        self._window.push(value)

    def end_row(self) -> None:
        """Rotate the line buffers and reset the previous-error register."""
        self._window.end_row()
        self._previous_error = 0

    # ------------------------------------------------------------------ #
    # introspection (used by the hardware model and the benchmarks)
    # ------------------------------------------------------------------ #

    @property
    def bias(self) -> BiasCorrector:
        return self._bias

    @property
    def window(self) -> ThreeRowWindow:
        return self._window

    def modeling_memory_bytes(self) -> int:
        """Modelling memory: line buffers + context statistics + division ROM.

        The paper quotes 3.7 KBytes for a 512-pixel-wide image: three line
        buffers (1.5 KB), 512 contexts x (13+1+5) bits (~1.2 KB) and the
        1 KB division ROM.
        """
        line_buffer = self._window.memory_bytes(self._config.bit_depth)
        context_memory = (self._bias.memory_bits() + 7) // 8
        division_rom = 1024 if self._config.use_lut_division else 0
        return line_buffer + context_memory + division_rom
