"""Probability estimator (Section IV of the paper).

The estimator owns one adaptive ("dynamic") frequency tree per coding
context — eight trees selected by the 3-bit index ``QE`` — plus a single
static tree used to transmit *escape* symbols.

Escapes occur because the frequency counts have finite width: when any count
reaches its maximum the whole tree is halved, and symbols that had count 1
drop to 0.  The next time such a symbol occurs it cannot be coded by the
dynamic tree, so an escape is signalled (by coding the dedicated escape
leaf) and the symbol is sent through the uniform static tree.

The per-pixel interface is :meth:`ProbabilityEstimator.encode_symbol` /
:meth:`ProbabilityEstimator.decode_symbol`; both also perform the adaptive
update so encoder and decoder models stay in lock-step by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import CodecConfig
from repro.entropy.binary_arithmetic import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
)
from repro.entropy.freqtree import FrequencyTree, StaticTree
from repro.exceptions import ModelStateError

__all__ = ["EstimatorStatistics", "ProbabilityEstimator"]


@dataclass
class EstimatorStatistics:
    """Counters the benchmark harness reports (escapes, rescales, decisions)."""

    symbols_coded: int = 0
    escapes: int = 0
    tree_rescales: int = 0
    binary_decisions: int = 0
    symbols_per_context: List[int] = field(default_factory=list)

    def escape_rate(self) -> float:
        """Fraction of symbols that had to be escaped."""
        if self.symbols_coded == 0:
            return 0.0
        return self.escapes / self.symbols_coded


class ProbabilityEstimator:
    """Eight dynamic frequency trees plus one static escape tree."""

    def __init__(self, config: CodecConfig) -> None:
        self._config = config
        self._trees = [
            FrequencyTree(
                alphabet_size=config.alphabet_size,
                count_bits=config.count_bits,
                with_escape=True,
                increment=config.estimator_increment,
            )
            for _ in range(config.energy_levels)
        ]
        self._static_tree = StaticTree(config.alphabet_size)
        self.statistics = EstimatorStatistics(
            symbols_per_context=[0] * config.energy_levels
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def context_count(self) -> int:
        """Number of dynamic coding contexts (8 in the paper)."""
        return len(self._trees)

    def tree(self, context: int) -> FrequencyTree:
        """Expose the tree of one coding context (used by tests/benchmarks)."""
        self._check_context(context)
        return self._trees[context]

    def memory_bits(self) -> int:
        """Total estimator storage in bits (all dynamic trees)."""
        return sum(tree.memory_bits() for tree in self._trees)

    # ------------------------------------------------------------------ #
    # coding
    # ------------------------------------------------------------------ #

    def encode_symbol(
        self, encoder: BinaryArithmeticEncoder, context: int, symbol: int
    ) -> None:
        """Encode ``symbol`` in coding context ``context`` and adapt."""
        self._check_context(context)
        self._check_symbol(symbol)
        tree = self._trees[context]
        stats = self.statistics

        if tree.can_encode(symbol):
            stats.binary_decisions += tree.encode_symbol(encoder, symbol)
        else:
            # Escape: code the escape leaf, then the raw symbol uniformly.
            escape_index = tree.escape_index
            if escape_index is None:
                raise ModelStateError("dynamic tree has no escape leaf configured")
            stats.binary_decisions += tree.encode_symbol(encoder, escape_index)
            stats.binary_decisions += self._static_tree.encode_symbol(encoder, symbol)
            stats.escapes += 1

        if tree.update(symbol):
            stats.tree_rescales += 1
        stats.symbols_coded += 1
        stats.symbols_per_context[context] += 1

    def decode_symbol(self, decoder: BinaryArithmeticDecoder, context: int) -> int:
        """Decode the next symbol in coding context ``context`` and adapt."""
        self._check_context(context)
        tree = self._trees[context]
        stats = self.statistics

        symbol = tree.decode_symbol(decoder)
        stats.binary_decisions += tree.depth
        if symbol == tree.escape_index:
            symbol = self._static_tree.decode_symbol(decoder)
            stats.binary_decisions += self._static_tree.depth
            stats.escapes += 1
        elif symbol >= self._config.alphabet_size:
            raise ModelStateError(
                "decoded padding leaf %d; bitstream is corrupt" % symbol
            )

        if tree.update(symbol):
            stats.tree_rescales += 1
        stats.symbols_coded += 1
        stats.symbols_per_context[context] += 1
        return symbol

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #

    def _check_context(self, context: int) -> None:
        if not 0 <= context < len(self._trees):
            raise ModelStateError(
                "coding context %d outside [0, %d)" % (context, len(self._trees))
            )

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self._config.alphabet_size:
            raise ModelStateError(
                "symbol %d outside alphabet of %d" % (symbol, self._config.alphabet_size)
            )
