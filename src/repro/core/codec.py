"""Object-oriented front-end of the proposed codec.

:class:`ProposedCodec` wraps the functional encoder/decoder behind the
common :class:`~repro.core.interface.LosslessImageCodec` interface so it can
be benchmarked side by side with the baselines and plugged into the
universal compressor of Figure 1.  It accepts both image containers:
grey-scale :class:`~repro.imaging.image.GrayImage` inputs produce the
classic single-plane containers, multi-component
:class:`~repro.imaging.planar.PlanarImage` inputs produce indexed version-3
containers (see :mod:`repro.core.components`), and :meth:`decode` returns
whichever container matches the stream.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.core.interface import LosslessImageCodec, require_engine
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage

__all__ = ["ProposedCodec"]


class ProposedCodec(LosslessImageCodec):
    """The paper's context-based lossless image codec.

    Parameters
    ----------
    config:
        Full codec configuration; defaults to the hardware-faithful preset
        evaluated in the paper (14-bit counts, LUT division, overflow guard).
    engine:
        Name of a registered coding engine (see
        :func:`repro.core.interface.register_engine`): ``"reference"`` (the
        paper-shaped per-pixel pipeline) and ``"fast"`` (row-vectorized
        modelling + inlined entropy coding) are built in.  Every engine
        produces byte-identical streams; the engine is a speed knob, not a
        format choice.
    plane_delta:
        Enable the inter-plane delta predictor for multi-component inputs
        (plane ``k > 0`` is coded as the modular delta to plane ``k - 1``).
        Ignored for grey-scale inputs.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_image
    >>> codec = ProposedCodec()
    >>> image = generate_image("lena", size=64)
    >>> stream = codec.encode(image)
    >>> codec.decode(stream) == image
    True
    >>> ProposedCodec(engine="fast").encode(image) == stream
    True
    """

    name = "proposed"

    def __init__(
        self,
        config: Optional[CodecConfig] = None,
        engine: str = "reference",
        plane_delta: bool = False,
    ) -> None:
        self.config = config if config is not None else CodecConfig.hardware()
        self.engine = require_engine(engine)
        self.plane_delta = plane_delta
        self.last_statistics: Optional[EncodeStatistics] = None

    @classmethod
    def reference(cls, **overrides) -> "ProposedCodec":
        """Exact-arithmetic variant (no hardware approximations)."""
        codec = cls(CodecConfig.reference(**overrides))
        codec.name = "proposed-reference"
        return codec

    @classmethod
    def hardware(cls, **overrides) -> "ProposedCodec":
        """Hardware-faithful variant (the paper's FPGA configuration)."""
        return cls(CodecConfig.hardware(**overrides))

    @classmethod
    def fast(cls, config: Optional[CodecConfig] = None, **overrides) -> "ProposedCodec":
        """Fast-engine variant (byte-identical streams, several times faster)."""
        if config is None:
            config = CodecConfig.hardware(**overrides)
        elif overrides:
            raise ValueError("pass either config or overrides, not both")
        codec = cls(config, engine="fast")
        codec.name = "proposed-fast"
        return codec

    @classmethod
    def parallel(
        cls,
        cores: Optional[int] = None,
        config: Optional[CodecConfig] = None,
        engine: str = "reference",
        plane_delta: bool = False,
    ):
        """Stripe-parallel variant: ``cores`` pipeline instances side by side.

        Returns a :class:`~repro.parallel.codec.ParallelCodec`, the software
        equivalent of the paper's multi-core hardware option.  Its grey
        streams use the version-2 (striped) container and its planar streams
        the version-3 (component-indexed) container; both decode through
        this class's :meth:`decode` as well, just without the parallel
        fan-out.  ``engine`` composes with striping: each (plane, stripe)
        cell is coded by the selected engine.
        """
        from repro.parallel.codec import ParallelCodec

        return ParallelCodec(
            cores=cores, config=config, engine=engine, plane_delta=plane_delta
        )

    def encode(self, image: Union[GrayImage, PlanarImage]) -> bytes:
        """Compress ``image``; statistics are kept in :attr:`last_statistics`.

        Both input kinds run the unified cell-grid pipeline
        (:mod:`repro.core.cellgrid`): grey-scale inputs produce a version-1
        container; planar inputs a version-3 container with one stripe per
        plane (use the parallel variant or
        :func:`repro.core.components.encode_planar` for striped
        random-access streams).
        """
        from repro.core.cellgrid import encode_grid

        stream, statistics = encode_grid(
            image, self.config, engine=self.engine, plane_delta=self.plane_delta
        )
        self.last_statistics = statistics
        return stream

    def decode(self, data: bytes) -> Union[GrayImage, PlanarImage]:
        """Reconstruct the exact image from an :meth:`encode` stream.

        Version-1/2 streams come back as :class:`GrayImage`, version-3
        streams as :class:`PlanarImage` — matching the container the input
        was encoded from.
        """
        from repro.core.cellgrid import decode_selection

        return decode_selection(data, self.config, engine=self.engine).image()

    def decode_plane(self, data: bytes, plane: int) -> GrayImage:
        """Decode one component plane, reading only its indexed bytes."""
        from repro.core.components import decode_plane

        return decode_plane(data, plane, self.config, engine=self.engine)

    def decode_region(
        self, data: bytes, stripe_range: Tuple[int, int]
    ) -> Union[GrayImage, PlanarImage]:
        """Decode only the rows covered by stripes ``[start, stop)``."""
        from repro.core.components import decode_region

        return decode_region(data, stripe_range, self.config, engine=self.engine)
