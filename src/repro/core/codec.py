"""Object-oriented front-end of the proposed codec.

:class:`ProposedCodec` wraps the functional encoder/decoder behind the
common :class:`~repro.core.interface.LosslessImageCodec` interface so it can
be benchmarked side by side with the baselines and plugged into the
universal compressor of Figure 1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import EncodeStatistics, encode_image_with_statistics
from repro.core.interface import LosslessImageCodec, require_engine
from repro.imaging.image import GrayImage

__all__ = ["ProposedCodec"]


class ProposedCodec(LosslessImageCodec):
    """The paper's context-based lossless image codec.

    Parameters
    ----------
    config:
        Full codec configuration; defaults to the hardware-faithful preset
        evaluated in the paper (14-bit counts, LUT division, overflow guard).
    engine:
        Coding engine: ``"reference"`` (the paper-shaped per-pixel pipeline)
        or ``"fast"`` (row-vectorized modelling + inlined entropy coding).
        Both produce byte-identical streams; the engine is a speed knob, not
        a format choice.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_image
    >>> codec = ProposedCodec()
    >>> image = generate_image("lena", size=64)
    >>> stream = codec.encode(image)
    >>> codec.decode(stream) == image
    True
    >>> ProposedCodec(engine="fast").encode(image) == stream
    True
    """

    name = "proposed"

    def __init__(
        self, config: Optional[CodecConfig] = None, engine: str = "reference"
    ) -> None:
        self.config = config if config is not None else CodecConfig.hardware()
        self.engine = require_engine(engine)
        self.last_statistics: Optional[EncodeStatistics] = None

    @classmethod
    def reference(cls, **overrides) -> "ProposedCodec":
        """Exact-arithmetic variant (no hardware approximations)."""
        codec = cls(CodecConfig.reference(**overrides))
        codec.name = "proposed-reference"
        return codec

    @classmethod
    def hardware(cls, **overrides) -> "ProposedCodec":
        """Hardware-faithful variant (the paper's FPGA configuration)."""
        return cls(CodecConfig.hardware(**overrides))

    @classmethod
    def fast(cls, config: Optional[CodecConfig] = None, **overrides) -> "ProposedCodec":
        """Fast-engine variant (byte-identical streams, several times faster)."""
        if config is None:
            config = CodecConfig.hardware(**overrides)
        elif overrides:
            raise ValueError("pass either config or overrides, not both")
        codec = cls(config, engine="fast")
        codec.name = "proposed-fast"
        return codec

    @classmethod
    def parallel(
        cls,
        cores: Optional[int] = None,
        config: Optional[CodecConfig] = None,
        engine: str = "reference",
    ):
        """Stripe-parallel variant: ``cores`` pipeline instances side by side.

        Returns a :class:`~repro.parallel.codec.ParallelCodec`, the software
        equivalent of the paper's multi-core hardware option.  Its streams
        use the version-2 (striped) container; they decode through this
        class's :meth:`decode` as well, just without the parallel fan-out.
        ``engine`` composes with striping: each stripe is coded by the
        selected engine.
        """
        from repro.parallel.codec import ParallelCodec

        return ParallelCodec(cores=cores, config=config, engine=engine)

    def encode(self, image: GrayImage) -> bytes:
        """Compress ``image``; statistics are kept in :attr:`last_statistics`."""
        stream, statistics = encode_image_with_statistics(
            image, self.config, engine=self.engine
        )
        self.last_statistics = statistics
        return stream

    def decode(self, data: bytes) -> GrayImage:
        """Reconstruct the exact image from an :meth:`encode` stream."""
        return decode_image(data, self.config, engine=self.engine)
