"""Prediction-error remapping (Section II of the paper).

The raw prediction error ``e = X - X̃`` of an ``n``-bit image lies in
``[-(2^n - 1), 2^n - 1]``.  Because both encoder and decoder know the
adjusted prediction ``X̃``, the error can first be reduced modulo ``2^n``
into the signed range ``[-2^(n-1), 2^(n-1) - 1]`` without losing
information, and then folded into the unsigned range ``[0, 2^n - 1]`` — the
paper's "remapped from the range −2^(n−1) to 2^(n−1), to the range 0 to
2^n − 1 to reduce the alphabet size".

The folding interleaves positive and negative errors (0, −1, +1, −2, +2, …)
so that small-magnitude errors — by far the most common — receive small
symbol indices, which keeps the probability-estimator trees well shaped.

All functions here are exact inverses of each other; a property-based test
checks the bijection over the full range.
"""

from __future__ import annotations

from typing import Tuple

from repro.exceptions import ModelStateError

__all__ = ["map_error", "unmap_error", "fold_signed", "unfold_signed"]


def fold_signed(error: int, bit_depth: int) -> int:
    """Fold a signed error in ``[-2^(n-1), 2^(n-1) - 1]`` to ``[0, 2^n - 1]``.

    Non-negative errors map to even codes (``2e``), negative errors to odd
    codes (``-2e - 1``).
    """
    half = 1 << (bit_depth - 1)
    if not -half <= error <= half - 1:
        raise ModelStateError(
            "signed error %d outside [-%d, %d]" % (error, half, half - 1)
        )
    if error >= 0:
        return 2 * error
    return -2 * error - 1


def unfold_signed(code: int, bit_depth: int) -> int:
    """Inverse of :func:`fold_signed`."""
    size = 1 << bit_depth
    if not 0 <= code < size:
        raise ModelStateError("folded code %d outside [0, %d)" % (code, size))
    if code % 2 == 0:
        return code // 2
    return -(code + 1) // 2


def map_error(actual: int, predicted: int, bit_depth: int) -> Tuple[int, int]:
    """Map the prediction error of one pixel to its coded symbol.

    Parameters
    ----------
    actual:
        The true pixel value ``X``.
    predicted:
        The adjusted prediction ``X̃`` known to both encoder and decoder.
    bit_depth:
        Bits per sample ``n``.

    Returns
    -------
    (symbol, wrapped_error):
        ``symbol`` is the value handed to the probability estimator
        (``0 .. 2^n − 1``); ``wrapped_error`` is the modulo-reduced signed
        error, which the error-feedback stage accumulates.
    """
    size = 1 << bit_depth
    half = size >> 1
    max_value = size - 1
    if not 0 <= actual <= max_value:
        raise ModelStateError("pixel value %d outside [0, %d]" % (actual, max_value))
    if not 0 <= predicted <= max_value:
        raise ModelStateError("prediction %d outside [0, %d]" % (predicted, max_value))

    error = (actual - predicted) % size
    if error >= half:
        error -= size
    return fold_signed(error, bit_depth), error


def unmap_error(symbol: int, predicted: int, bit_depth: int) -> Tuple[int, int]:
    """Reconstruct the pixel value from a coded symbol.

    Returns ``(actual, wrapped_error)`` where ``wrapped_error`` matches the
    value produced by :func:`map_error` on the encoder side (needed so the
    decoder updates its error-feedback state identically).
    """
    size = 1 << bit_depth
    max_value = size - 1
    if not 0 <= predicted <= max_value:
        raise ModelStateError("prediction %d outside [0, %d]" % (predicted, max_value))
    error = unfold_signed(symbol, bit_depth)
    actual = (predicted + error) % size
    return actual, error
