"""Encoder of the proposed codec.

The per-pixel loop follows the architecture of Figure 3: model the pixel
from causal data (prediction, contexts, error feedback), map the prediction
error to a non-negative symbol, hand the symbol to the probability estimator
which drives the binary arithmetic coder, then commit the pixel to the
adaptive state.  The decoder performs the mirror image of every step, which
is what makes the scheme lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.bitstream import CodecId, pack_stream
from repro.core.config import CodecConfig
from repro.core.mapping import map_error
from repro.core.modeling import ImageModeler
from repro.core.probability import ProbabilityEstimator
from repro.entropy.binary_arithmetic import BinaryArithmeticEncoder
from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage
from repro.utils.bitio import BitWriter

__all__ = [
    "EncodeStatistics",
    "encode_image",
    "encode_image_with_statistics",
    "encode_payload",
    "merge_statistics",
]


@dataclass
class EncodeStatistics:
    """Diagnostics gathered while encoding one image."""

    #: Compressed payload size in bytes (excluding the container header).
    payload_bytes: int = 0
    #: Compressed size including the container header.
    total_bytes: int = 0
    #: Bits per pixel of the complete stream.
    bits_per_pixel: float = 0.0
    #: Number of escape events in the probability estimator.
    escapes: int = 0
    #: Number of dynamic-tree halving rescales.
    tree_rescales: int = 0
    #: Number of binary decisions handed to the arithmetic coder.
    binary_decisions: int = 0
    #: Histogram of coding-context usage (index = QE).
    context_usage: Dict[int, int] = field(default_factory=dict)
    #: Overflow-guard saturation events in the bias corrector.
    bias_saturations: int = 0


def merge_statistics(parts: "list[EncodeStatistics]") -> EncodeStatistics:
    """Aggregate the statistics of independently coded stripes.

    Byte totals and counters sum; the context-usage histograms merge.  The
    rate fields (``total_bytes``, ``bits_per_pixel``) are left at zero for
    the caller to fill in once the container size is known.
    """
    merged = EncodeStatistics()
    for part in parts:
        merged.payload_bytes += part.payload_bytes
        merged.escapes += part.escapes
        merged.tree_rescales += part.tree_rescales
        merged.binary_decisions += part.binary_decisions
        merged.bias_saturations += part.bias_saturations
        for context, count in part.context_usage.items():
            merged.context_usage[context] = merged.context_usage.get(context, 0) + count
    return merged


def encode_payload(image: GrayImage, config: CodecConfig, engine: str = "reference") -> tuple:
    """Run the modelling + coding pipeline; return (payload, statistics).

    This is the container-less inner encoder: it codes ``image`` (which may
    be a single stripe of a larger image) with fresh adaptive state and
    returns only the entropy-coded payload.  The stripe-parallel subsystem
    calls it once per stripe; :func:`encode_image_with_statistics` calls it
    once for the whole image.

    ``engine`` selects the implementation: ``"reference"`` runs the
    per-pixel pipeline below; ``"fast"`` delegates to the vectorized engine
    of :mod:`repro.fast`, which produces a byte-identical payload.
    """
    from repro.core.interface import require_engine

    if require_engine(engine) == "fast":
        from repro.fast.engine import encode_payload_fast

        return encode_payload_fast(image, config)

    modeler = ImageModeler(image.width, config)
    estimator = ProbabilityEstimator(config)
    writer = BitWriter()
    coder = BinaryArithmeticEncoder(writer, precision=config.coder_precision)

    bit_depth = config.bit_depth
    width = image.width
    height = image.height
    pixels = image.pixels()

    index = 0
    for _y in range(height):
        for x in range(width):
            value = pixels[index]
            index += 1
            model = modeler.model_pixel(x)
            symbol, wrapped_error = map_error(value, model.adjusted, bit_depth)
            estimator.encode_symbol(coder, model.context.energy, symbol)
            modeler.commit_pixel(value, wrapped_error, model)
        modeler.end_row()

    coder.finish()
    payload = writer.getvalue()

    statistics = EncodeStatistics(
        payload_bytes=len(payload),
        escapes=estimator.statistics.escapes,
        tree_rescales=estimator.statistics.tree_rescales,
        binary_decisions=estimator.statistics.binary_decisions,
        context_usage={
            context: count
            for context, count in enumerate(estimator.statistics.symbols_per_context)
            if count
        },
        bias_saturations=modeler.bias.rescale_events,
    )
    return payload, statistics


def encode_image(
    image: GrayImage, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> bytes:
    """Compress ``image`` with the proposed codec and return the container."""
    compressed, _ = encode_image_with_statistics(image, config, engine=engine)
    return compressed


def encode_image_with_statistics(
    image: GrayImage, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> tuple:
    """Compress ``image`` and also return :class:`EncodeStatistics`."""
    if config is None:
        config = CodecConfig.hardware()
    if image.bit_depth != config.bit_depth:
        raise ConfigError(
            "image bit depth %d does not match codec bit depth %d"
            % (image.bit_depth, config.bit_depth)
        )

    payload, statistics = encode_payload(image, config, engine=engine)
    codec_id = CodecId.PROPOSED_HARDWARE if config.use_lut_division else CodecId.PROPOSED
    flags = 1 if config.use_lut_division else 0
    stream = pack_stream(
        codec_id,
        image.width,
        image.height,
        image.bit_depth,
        payload,
        parameter=config.count_bits,
        flags=flags,
    )
    statistics.total_bytes = len(stream)
    statistics.bits_per_pixel = 8.0 * len(stream) / image.pixel_count
    return stream, statistics
