"""Encoder front of the proposed codec.

The per-pixel coding loop itself lives in the engine backends — the
paper-shaped reference pipeline in :mod:`repro.core.refengine`, the
vectorized one in :mod:`repro.fast` — and is reached through the engine
registry of :mod:`repro.core.interface`.  This module provides the
functional encode entry points: :func:`encode_payload` codes one cell with
whichever engine is selected, and :func:`encode_image` /
:func:`encode_image_with_statistics` wrap a whole grey image in a version-1
container through the unified cell-grid pipeline of
:mod:`repro.core.cellgrid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import CodecConfig
from repro.imaging.image import GrayImage

__all__ = [
    "EncodeStatistics",
    "encode_image",
    "encode_image_with_statistics",
    "encode_payload",
    "merge_statistics",
]


@dataclass
class EncodeStatistics:
    """Diagnostics gathered while encoding one image."""

    #: Compressed payload size in bytes (excluding the container header).
    payload_bytes: int = 0
    #: Compressed size including the container header.
    total_bytes: int = 0
    #: Bits per pixel of the complete stream.
    bits_per_pixel: float = 0.0
    #: Number of escape events in the probability estimator.
    escapes: int = 0
    #: Number of dynamic-tree halving rescales.
    tree_rescales: int = 0
    #: Number of binary decisions handed to the arithmetic coder.
    binary_decisions: int = 0
    #: Histogram of coding-context usage (index = QE).
    context_usage: Dict[int, int] = field(default_factory=dict)
    #: Overflow-guard saturation events in the bias corrector.
    bias_saturations: int = 0


def merge_statistics(parts: "list[EncodeStatistics]") -> EncodeStatistics:
    """Aggregate the statistics of independently coded stripes.

    Byte totals and counters sum; the context-usage histograms merge.  The
    rate fields (``total_bytes``, ``bits_per_pixel``) are left at zero for
    the caller to fill in once the container size is known.
    """
    merged = EncodeStatistics()
    for part in parts:
        merged.payload_bytes += part.payload_bytes
        merged.escapes += part.escapes
        merged.tree_rescales += part.tree_rescales
        merged.binary_decisions += part.binary_decisions
        merged.bias_saturations += part.bias_saturations
        for context, count in part.context_usage.items():
            merged.context_usage[context] = merged.context_usage.get(context, 0) + count
    return merged


def encode_payload(image: GrayImage, config: CodecConfig, engine: str = "reference") -> tuple:
    """Run the modelling + coding pipeline; return (payload, statistics).

    This is the container-less inner encoder: it codes ``image`` (which may
    be a single cell of a larger grid) with fresh adaptive state and
    returns only the entropy-coded payload.  The cell-grid pipeline calls
    it once per (plane, stripe) cell.

    ``engine`` selects the registered backend that does the work
    (:func:`repro.core.interface.get_engine`); every backend produces a
    byte-identical payload.
    """
    from repro.core.interface import get_engine

    return get_engine(engine).encode_payload(image, config)


def encode_image(
    image: GrayImage, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> bytes:
    """Compress ``image`` with the proposed codec and return the container."""
    compressed, _ = encode_image_with_statistics(image, config, engine=engine)
    return compressed


def encode_image_with_statistics(
    image: GrayImage, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> tuple:
    """Compress ``image`` and also return :class:`EncodeStatistics`."""
    from repro.core.cellgrid import encode_grid

    if config is None:
        config = CodecConfig.hardware()
    return encode_grid(image, config, engine=engine)
