"""Context modelling (Section II of the paper).

Two pieces of context are formed for every pixel:

* a **texture pattern** ``t`` — six causal neighbours are compared with the
  primary prediction; each comparison contributes one bit, giving
  ``2**6 = 64`` local texture classes;
* a **coding context index** ``QE`` — the local error activity
  ``dh + dv + 2*|e_W|`` (gradients plus the previous prediction error) is
  quantised into 8 levels.

Their concatenation — 6 + 3 = 9 bits — selects one of the **512 compound
contexts** used by the error-feedback stage, while ``QE`` alone selects which
of the 8 dynamic probability-estimator trees codes the mapped error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.config import CodecConfig
from repro.core.neighborhood import Neighborhood
from repro.core.tables import build_energy_lut

__all__ = ["ContextDescriptor", "ContextModeler"]


@dataclass(frozen=True)
class ContextDescriptor:
    """Everything the later stages need to know about the current context."""

    #: 6-bit texture pattern.
    texture: int
    #: 3-bit quantised error-energy level (the coding context index QE).
    energy: int
    #: Compound context index = texture * energy_levels + energy (0..511).
    compound: int


class ContextModeler:
    """Builds texture patterns, energy levels and compound context indices."""

    def __init__(self, config: CodecConfig) -> None:
        self._config = config
        self._thresholds: Tuple[int, ...] = config.energy_thresholds
        self._energy_levels = config.energy_levels
        # One shared definition of the quantiser for both coding engines.
        self._energy_lut = build_energy_lut(self._thresholds, self._energy_levels)
        self._energy_lut_limit = len(self._energy_lut) - 1

    # ------------------------------------------------------------------ #
    # texture pattern
    # ------------------------------------------------------------------ #

    def texture_pattern(self, neighbors: Neighborhood, predicted: int) -> int:
        """Compare six neighbours with the prediction to form the pattern.

        Bit ``i`` is set when the corresponding neighbour is strictly below
        the predicted value; the neighbour order (N, W, NW, NE, NN, WW) is
        fixed so encoder and decoder agree.
        """
        pattern = 0
        if neighbors.n < predicted:
            pattern |= 0b000001
        if neighbors.w < predicted:
            pattern |= 0b000010
        if neighbors.nw < predicted:
            pattern |= 0b000100
        if neighbors.ne < predicted:
            pattern |= 0b001000
        if neighbors.nn < predicted:
            pattern |= 0b010000
        if neighbors.ww < predicted:
            pattern |= 0b100000
        return pattern & ((1 << self._config.texture_bits) - 1)

    # ------------------------------------------------------------------ #
    # coding context (error energy)
    # ------------------------------------------------------------------ #

    def error_energy(self, dh: int, dv: int, previous_error: int) -> int:
        """Local activity measure: gradients plus the previous error at W."""
        return dh + dv + 2 * abs(previous_error)

    def quantize_energy(self, energy: int) -> int:
        """Quantise the activity measure into the coding-context index QE."""
        if 0 <= energy <= self._energy_lut_limit:
            return self._energy_lut[energy]
        if energy > self._energy_lut_limit:
            return self._energy_levels - 1
        # Negative activity cannot occur in the pipeline; keep the threshold
        # scan so out-of-band callers see the historical behaviour.
        for level, threshold in enumerate(self._thresholds):
            if energy <= threshold:
                return level
        return self._energy_levels - 1

    # ------------------------------------------------------------------ #
    # compound context
    # ------------------------------------------------------------------ #

    def compound_index(self, texture: int, energy: int) -> int:
        """Combine texture pattern and QE into the compound context index."""
        return texture * self._energy_levels + energy

    def describe(
        self,
        neighbors: Neighborhood,
        predicted: int,
        dh: int,
        dv: int,
        previous_error: int,
    ) -> ContextDescriptor:
        """Build the full context descriptor for the current pixel."""
        texture = self.texture_pattern(neighbors, predicted)
        energy = self.quantize_energy(self.error_energy(dh, dv, previous_error))
        return ContextDescriptor(
            texture=texture,
            energy=energy,
            compound=self.compound_index(texture, energy),
        )
