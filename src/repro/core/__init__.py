"""The paper's primary contribution: the context-based lossless image codec.

The public surface of this package is:

* :class:`~repro.core.config.CodecConfig` — every tunable of the algorithm
  (frequency-count width, context layout, hardware approximations).
* :class:`~repro.core.codec.ProposedCodec` — the encoder/decoder pair, in
  either the *reference* configuration (exact arithmetic) or the
  *hardware-faithful* configuration (narrow registers, LUT division,
  overflow guard) described in Section III of the paper.
* :func:`~repro.core.encoder.encode_image` /
  :func:`~repro.core.decoder.decode_image` — functional entry points.
* :mod:`repro.core.components` — multi-component (planar) encoding on top
  of the same pipeline: the version-3 indexed container, the inter-plane
  delta predictor and the random-access decoders
  (:func:`~repro.core.components.decode_plane`,
  :func:`~repro.core.components.decode_region`).

The internal pipeline mirrors the paper's architecture one block per module:
``neighborhood`` (Fig. 2) → ``predictor`` (GAP) → ``context`` (texture +
coding context) → ``bias`` (error feedback with Overflow Guard and LUT
division) → ``mapping`` (error folding) → ``probability`` (8 dynamic trees +
static escape tree, Fig. 4) → binary arithmetic coder.
"""

from repro.core.codec import ProposedCodec
from repro.core.components import (
    decode_plane,
    decode_planar,
    decode_region,
    encode_planar,
    stream_index,
)
from repro.core.config import CodecConfig
from repro.core.decoder import decode_image
from repro.core.encoder import EncodeStatistics, encode_image, encode_image_with_statistics
from repro.core.interface import LosslessImageCodec

__all__ = [
    "CodecConfig",
    "ProposedCodec",
    "LosslessImageCodec",
    "encode_image",
    "encode_image_with_statistics",
    "EncodeStatistics",
    "decode_image",
    "encode_planar",
    "decode_planar",
    "decode_plane",
    "decode_region",
    "stream_index",
]
