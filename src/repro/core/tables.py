"""Precomputed modelling tables shared by the two coding engines.

The reference engine (:mod:`repro.core.encoder` / :mod:`repro.core.decoder`)
and the fast engine (:mod:`repro.fast`) must derive *exactly* the same
prediction, context index, error feedback and mapped symbol from the same
causal data — that is what makes their bitstreams byte-identical.  To keep a
single definition of every quantity, the table-valued parts of the model are
built here, once per configuration, and consumed by both engines:

* the **error-energy quantiser LUT** that turns the activity measure
  ``dh + dv + 2*|e_W|`` into the 3-bit coding-context index QE
  (used by :class:`~repro.core.context.ContextModeler` and by the fast
  engine's inner loop);
* the **reciprocal-division ROM** of the error-feedback stage (the paper's
  1 KByte LUT), exported as a plain list so the fast engine can inline the
  multiply-and-shift;
* the scalar bounds (dividend clamp, sum clamp, count saturation point)
  of the Overflow Guard registers.

Everything in this module is derived from :class:`~repro.core.config.
CodecConfig` alone, so two tables built from equal configurations are equal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.bias import ReciprocalDivider
from repro.core.config import CodecConfig

__all__ = ["build_energy_lut", "ModelingTables"]


def build_energy_lut(thresholds: Sequence[int], levels: int) -> List[int]:
    """Build the error-energy quantisation lookup table.

    ``lut[energy]`` is the coding-context index QE for every activity value
    up to the last threshold; energies beyond the table map to the top level
    (``levels - 1``).  The table reproduces the threshold scan of the paper:
    the first threshold the energy does not exceed selects the level.
    """
    top = thresholds[-1] if thresholds else 0
    lut: List[int] = []
    for energy in range(top + 1):
        level = levels - 1
        for candidate, threshold in enumerate(thresholds):
            if energy <= threshold:
                level = candidate
                break
        lut.append(level)
    return lut


class ModelingTables:
    """All table-valued model state derived from one :class:`CodecConfig`.

    Attributes
    ----------
    energy_lut:
        ``energy_lut[energy]`` = QE for ``energy <= energy_lut_limit``.
    energy_lut_limit:
        Largest energy covered by the LUT; larger energies quantise to
        ``config.energy_levels - 1``.
    reciprocal_rom:
        The division ROM as a plain list (``rom[c] = round(2**shift / c)``),
        or ``None`` when the configuration uses exact division.
    reciprocal_shift / reciprocal_rounding:
        Shift and half-LSB rounding offset of the LUT division.
    dividend_max / sum_max / count_max:
        Overflow-Guard register bounds (Section III of the paper).
    """

    def __init__(self, config: CodecConfig) -> None:
        self.config = config
        self.energy_lut = build_energy_lut(config.energy_thresholds, config.energy_levels)
        self.energy_lut_limit = len(self.energy_lut) - 1
        self.divider: Optional[ReciprocalDivider] = (
            ReciprocalDivider() if config.use_lut_division else None
        )
        if self.divider is not None:
            self.reciprocal_rom: Optional[List[int]] = [
                self.divider.rom_entry(i) if i else 0 for i in range(self.divider.entries)
            ]
            self.reciprocal_shift = self.divider.shift
            self.reciprocal_rounding = 1 << (self.divider.shift - 1)
        else:
            self.reciprocal_rom = None
            self.reciprocal_shift = 0
            self.reciprocal_rounding = 0
        self.dividend_max = config.bias_dividend_max
        self.sum_max = (1 << config.bias_sum_magnitude_bits) - 1
        self.count_max = config.bias_count_max

    def quantize_energy(self, energy: int) -> int:
        """LUT-backed equivalent of :meth:`ContextModeler.quantize_energy`."""
        if energy > self.energy_lut_limit:
            return self.config.energy_levels - 1
        return self.energy_lut[energy]
