"""Multi-component (planar) encoding and random-access decoding.

This module lifts the single-plane pipeline of :mod:`repro.core.encoder` /
:mod:`repro.core.decoder` to :class:`~repro.imaging.planar.PlanarImage`
payloads (RGB and arbitrary N-band stacks) and gives streams O(1) random
access:

* every plane is split into the same ``S`` balanced horizontal stripes and
  each (plane, stripe) cell is coded with fresh adaptive state — planes and
  stripes therefore compose freely with both coding engines and with the
  process pool of :mod:`repro.parallel.codec`;
* an optional **inter-plane predictor** codes plane ``k > 0`` as the
  modular per-pixel delta to the reconstructed plane ``k - 1`` (the paper's
  GAP-style prediction reused across bands: correlated planes turn into
  near-zero residual images that the context modeller compresses far
  better);
* the version-3 container's component table doubles as a byte-offset index,
  so :func:`decode_plane` and :func:`decode_region` locate and decode only
  the cells they need instead of the whole stream.

The delta predictor is *pixel-wise*, which keeps random access intact:
stripe ``s`` of plane ``k`` only ever needs stripe ``s`` of planes
``0..k-1``, so a region decode stays proportional to the region even on
delta-coded streams (a single-plane decode of plane ``k`` needs planes
``0..k``, still skipping all later planes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.bitstream import (
    COMPONENT_FLAG_PLANE_DELTA,
    CodecId,
    StreamHeader,
    component_spans,
    pack_component_stream,
    parse_stream_header,
    verify_component_cell,
)
from repro.core.config import CodecConfig
from repro.core.decoder import decode_payload, resolve_stream_config
from repro.core.encoder import EncodeStatistics, encode_payload, merge_statistics
from repro.exceptions import BitstreamError, ConfigError, ModelStateError, StripingError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage, default_plane_names

__all__ = [
    "encode_planar",
    "encode_planar_with_statistics",
    "decode_planar",
    "decode_plane",
    "decode_region",
    "plane_residuals",
    "reconstruct_plane_arrays",
    "stream_index",
    "measure_random_access",
    "IndexEntry",
    "StreamIndex",
]


# ---------------------------------------------------------------------- #
# inter-plane predictor
# ---------------------------------------------------------------------- #


def plane_residuals(image: PlanarImage, plane_delta: bool) -> List[GrayImage]:
    """Return the plane images actually handed to the entropy coder.

    Without the predictor these are the planes themselves.  With it, plane
    ``k > 0`` becomes ``(plane_k - plane_{k-1}) mod 2**bit_depth`` — the
    modular delta is exactly invertible, so the scheme stays lossless.
    """
    planes = list(image.planes())
    if not plane_delta or len(planes) == 1:
        return planes
    size = 1 << image.bit_depth
    arrays = [plane.to_array() for plane in planes]
    residuals = [planes[0]]
    for k in range(1, len(planes)):
        delta = (arrays[k] - arrays[k - 1]) % size
        residuals.append(
            GrayImage(
                image.width,
                image.height,
                delta.reshape(-1).tolist(),
                image.bit_depth,
                planes[k].name,
            )
        )
    return residuals


def reconstruct_plane_arrays(
    residuals: Sequence[np.ndarray], bit_depth: int, plane_delta: bool
) -> List[np.ndarray]:
    """Invert :func:`plane_residuals` on decoded residual arrays."""
    if not plane_delta or len(residuals) == 1:
        return list(residuals)
    size = 1 << bit_depth
    planes = [residuals[0]]
    for k in range(1, len(residuals)):
        planes.append((residuals[k] + planes[k - 1]) % size)
    return planes


# ---------------------------------------------------------------------- #
# encoding
# ---------------------------------------------------------------------- #


def _plan_for_header(header: StreamHeader):
    """Derive the deterministic stripe partition a stream was coded with."""
    from repro.parallel.partition import plan_stripes

    try:
        return plan_stripes(header.height, header.stripe_count)
    except StripingError as exc:
        raise BitstreamError("invalid stripe table: %s" % exc) from exc


def encode_planar_with_statistics(
    image: PlanarImage,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    stripes: int = 1,
    plane_delta: bool = False,
) -> Tuple[bytes, EncodeStatistics]:
    """Compress a planar image into a version-3 container, with statistics.

    Every plane is coded as ``stripes`` independent stripe payloads (the
    balanced partition of :func:`repro.parallel.partition.plan_stripes`), so
    the emitted stream is byte-identical to what the stripe-parallel codec
    produces for the same stripe count.
    """
    from repro.parallel.partition import plan_stripes

    if config is None:
        config = CodecConfig.hardware(bit_depth=image.bit_depth)
    if image.bit_depth != config.bit_depth:
        raise ConfigError(
            "image bit depth %d does not match codec bit depth %d"
            % (image.bit_depth, config.bit_depth)
        )
    try:
        plan = plan_stripes(image.height, stripes)
    except StripingError as exc:
        raise ConfigError(str(exc)) from exc

    residuals = plane_residuals(image, plane_delta)
    plane_payloads: List[List[bytes]] = []
    parts: List[EncodeStatistics] = []
    for residual in residuals:
        pixels = residual.pixels()
        stripe_payloads: List[bytes] = []
        for spec in plan:
            stripe = GrayImage(
                image.width,
                spec.row_count,
                pixels[spec.start_row * image.width : spec.stop_row * image.width],
                image.bit_depth,
            )
            payload, statistics = encode_payload(stripe, config, engine=engine)
            stripe_payloads.append(payload)
            parts.append(statistics)
        plane_payloads.append(stripe_payloads)

    codec_id = CodecId.PROPOSED_HARDWARE if config.use_lut_division else CodecId.PROPOSED
    stream = pack_component_stream(
        codec_id,
        image.width,
        image.height,
        image.bit_depth,
        plane_payloads,
        parameter=config.count_bits,
        flags=1 if config.use_lut_division else 0,
        component_flags=COMPONENT_FLAG_PLANE_DELTA if plane_delta else 0,
    )
    statistics = merge_statistics(parts)
    statistics.total_bytes = len(stream)
    statistics.bits_per_pixel = 8.0 * len(stream) / image.sample_count
    return stream, statistics


def encode_planar(
    image: PlanarImage,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    stripes: int = 1,
    plane_delta: bool = False,
) -> bytes:
    """Compress a planar image into a version-3 container."""
    stream, _ = encode_planar_with_statistics(
        image, config, engine=engine, stripes=stripes, plane_delta=plane_delta
    )
    return stream


# ---------------------------------------------------------------------- #
# decoding
# ---------------------------------------------------------------------- #


def _decode_cell(
    payload: bytes, width: int, rows: int, config: CodecConfig, engine: str
) -> List[int]:
    """Decode one (plane, stripe) cell, normalising corrupt-payload errors.

    The entropy decoder raises :class:`ModelStateError` when a payload
    drives a model into an impossible state; for a container consumer that
    is a corrupt bitstream, so it is re-raised as
    :class:`~repro.exceptions.BitstreamError`.
    """
    try:
        return decode_payload(payload, width, rows, config, engine=engine)
    except ModelStateError as exc:
        raise BitstreamError("corrupt cell payload: %s" % exc) from exc


def _decode_plane_cells(
    data: bytes,
    header: StreamHeader,
    plan,
    plane: int,
    config: CodecConfig,
    engine: str,
) -> np.ndarray:
    """Decode the given stripes of one plane into a residual sample array.

    ``plan`` selects which stripes to read (any contiguous slice of the
    stream's partition); each cell is CRC-verified against the index before
    entropy decoding, and only the selected cells' bytes are ever touched.
    This single loop backs every serial decode entry point, so the CRC /
    error-normalisation / reshape behaviour cannot drift between them.
    """
    spans = component_spans(header)[plane]
    pixels: List[int] = []
    rows = 0
    for spec in plan:
        offset, length = spans[spec.index]
        cell = verify_component_cell(
            header, plane, spec.index, data[offset : offset + length]
        )
        pixels.extend(_decode_cell(cell, header.width, spec.row_count, config, engine))
        rows += spec.row_count
    return np.asarray(pixels, dtype=np.int64).reshape(rows, header.width)


def decode_planar(
    data: bytes, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> PlanarImage:
    """Reconstruct the full planar image from any proposed-codec container.

    Version-1/2 (grey-scale) streams come back as a one-plane image, so this
    function is a universal decoder for every container version.
    """
    header = parse_stream_header(data)
    config = resolve_stream_config(header, config)
    plan = _plan_for_header(header)
    residual_arrays = [
        _decode_plane_cells(data, header, plan, plane, config, engine)
        for plane in range(header.component_count)
    ]
    planes = reconstruct_plane_arrays(residual_arrays, header.bit_depth, header.plane_delta)
    names = default_plane_names(len(planes))
    return PlanarImage(
        [
            GrayImage(
                header.width,
                header.height,
                array.reshape(-1).tolist(),
                header.bit_depth,
                name,
            )
            for array, name in zip(planes, names)
        ]
    )


def decode_plane(
    data: bytes,
    plane: int,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
) -> GrayImage:
    """Decode a single component plane, touching only the bytes it needs.

    On an independently coded stream exactly the indexed cells of ``plane``
    are read.  On a delta-coded stream the predictor chain is walked, so
    planes ``0..plane`` are decoded (and everything after ``plane`` is still
    skipped).
    """
    header = parse_stream_header(data)
    config = resolve_stream_config(header, config)
    if not 0 <= plane < header.component_count:
        raise BitstreamError(
            "plane %d outside stream of %d component(s)" % (plane, header.component_count)
        )
    needed = range(plane + 1) if header.plane_delta else (plane,)
    plan = _plan_for_header(header)
    residual_arrays = [
        _decode_plane_cells(data, header, plan, k, config, engine) for k in needed
    ]
    planes = reconstruct_plane_arrays(residual_arrays, header.bit_depth, header.plane_delta)
    name = default_plane_names(header.component_count)[plane]
    return GrayImage(
        header.width,
        header.height,
        planes[-1].reshape(-1).tolist(),
        header.bit_depth,
        name,
    )


def decode_region(
    data: bytes,
    stripe_range: Tuple[int, int],
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
) -> Union[GrayImage, PlanarImage]:
    """Decode the rows covered by stripes ``[start, stop)``, and only those.

    The return type matches what a full decode of the stream yields: grey
    (version-1/2) streams come back as a :class:`GrayImage` region, while
    version-3 streams — even single-plane ones — come back as a
    :class:`PlanarImage` region (all planes, region rows).  Because the
    inter-plane delta is pixel-wise, a region decode on a delta-coded
    stream still touches only the selected stripes of every plane.

    Version-1 streams hold a single stripe, so only ``(0, 1)`` is valid
    there; version-2/3 streams accept any sub-range of their stripe table.
    """
    header = parse_stream_header(data)
    config = resolve_stream_config(header, config)
    start, stop = stripe_range
    if not 0 <= start < stop <= header.stripe_count:
        raise BitstreamError(
            "stripe range [%d, %d) outside stream of %d stripe(s)"
            % (start, stop, header.stripe_count)
        )
    plan = _plan_for_header(header)[start:stop]
    row_count = sum(spec.row_count for spec in plan)
    residual_arrays = [
        _decode_plane_cells(data, header, plan, plane, config, engine)
        for plane in range(header.component_count)
    ]
    planes = reconstruct_plane_arrays(residual_arrays, header.bit_depth, header.plane_delta)
    names = default_plane_names(header.component_count)
    images = [
        GrayImage(header.width, row_count, array.reshape(-1).tolist(), header.bit_depth, name)
        for array, name in zip(planes, names)
    ]
    if header.component_count == 1 and not header.component_lengths:
        return images[0]
    return PlanarImage(images)


# ---------------------------------------------------------------------- #
# stream inspection
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class IndexEntry:
    """One (plane, stripe) cell of a stream's random-access index."""

    plane: int
    stripe: int
    start_row: int
    row_count: int
    offset: int
    length: int
    #: CRC-32 of the cell payload; ``None`` for pre-v3 streams (no index CRC).
    crc: Optional[int] = None

    def as_json(self) -> dict:
        return {
            "plane": self.plane,
            "stripe": self.stripe,
            "start_row": self.start_row,
            "row_count": self.row_count,
            "offset": self.offset,
            "length": self.length,
            "crc": "%08x" % self.crc if self.crc is not None else None,
        }


@dataclass(frozen=True)
class StreamIndex:
    """Parsed container metadata plus the full random-access index."""

    version: int
    codec: str
    width: int
    height: int
    bit_depth: int
    component_count: int
    stripe_count: int
    plane_delta: bool
    hardware: bool
    payload_length: int
    total_length: int
    entries: Tuple[IndexEntry, ...]

    def format_report(self) -> str:
        lines = [
            "container : version %d (%s)"
            % (
                self.version,
                {1: "single payload", 2: "striped", 3: "multi-component, indexed"}[
                    self.version
                ],
            ),
            "codec     : %s" % self.codec,
            "geometry  : %dx%d, %d component(s), %d bits/sample"
            % (self.width, self.height, self.component_count, self.bit_depth),
            "flags     : hardware=%s, plane-delta=%s"
            % ("yes" if self.hardware else "no", "yes" if self.plane_delta else "no"),
            "payload   : %d bytes in %d indexed cell(s) (%d bytes total)"
            % (self.payload_length, len(self.entries), self.total_length),
            "index     :",
            "  %5s %6s %12s %10s %10s %9s"
            % ("plane", "stripe", "rows", "offset", "length", "crc32"),
        ]
        for entry in self.entries:
            lines.append(
                "  %5d %6d [%4d,%5d) %10d %10d %9s"
                % (
                    entry.plane,
                    entry.stripe,
                    entry.start_row,
                    entry.start_row + entry.row_count,
                    entry.offset,
                    entry.length,
                    "%08x" % entry.crc if entry.crc is not None else "-",
                )
            )
        return "\n".join(lines)

    def as_json(self) -> dict:
        return {
            "version": self.version,
            "codec": self.codec,
            "width": self.width,
            "height": self.height,
            "bit_depth": self.bit_depth,
            "component_count": self.component_count,
            "stripe_count": self.stripe_count,
            "plane_delta": self.plane_delta,
            "hardware": self.hardware,
            "payload_length": self.payload_length,
            "total_length": self.total_length,
            "entries": [entry.as_json() for entry in self.entries],
        }


def stream_index(data: bytes) -> StreamIndex:
    """Parse a container and return its random-access index.

    Works for every container version and codec (the index never decodes
    payload bytes): version-1 streams report a single cell, version-2
    streams one cell per stripe, version-3 streams the plane-major grid.
    """
    header = parse_stream_header(data)
    plan = _plan_for_header(header)
    entries = []
    for plane, plane_spans in enumerate(component_spans(header)):
        for spec, (offset, length) in zip(plan, plane_spans):
            entries.append(
                IndexEntry(
                    plane=plane,
                    stripe=spec.index,
                    start_row=spec.start_row,
                    row_count=spec.row_count,
                    offset=offset,
                    length=length,
                    crc=(
                        header.component_crcs[plane][spec.index]
                        if header.component_crcs
                        else None
                    ),
                )
            )
    return StreamIndex(
        version=header.version,
        codec=header.codec.name,
        width=header.width,
        height=header.height,
        bit_depth=header.bit_depth,
        component_count=header.component_count,
        stripe_count=header.stripe_count,
        plane_delta=header.plane_delta,
        hardware=bool(header.flags & 1),
        payload_length=header.payload_length,
        total_length=len(data),
        entries=tuple(entries),
    )


def measure_random_access(
    data: bytes, plane: int, config: Optional[CodecConfig] = None, repeats: int = 3
) -> Tuple[float, float]:
    """Wall-clock (full decode, single-plane decode) best-of-``repeats``.

    A convenience probe for the ``components`` experiment and the README
    examples: on an independently coded C-plane stream the plane decode
    should approach ``1/C`` of the full decode.
    """
    best_full = float("inf")
    best_plane = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        decode_planar(data, config)
        best_full = min(best_full, time.perf_counter() - start)
        start = time.perf_counter()
        decode_plane(data, plane, config)
        best_plane = min(best_plane, time.perf_counter() - start)
    return best_full, best_plane
