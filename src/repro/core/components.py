"""Multi-component (planar) encoding and random-access decoding.

This module is the planar face of the unified cell-grid pipeline
(:mod:`repro.core.cellgrid`): a :class:`~repro.imaging.planar.PlanarImage`
(RGB or arbitrary N-band stack) is planned into ``planes x stripes`` cells,
each coded with fresh adaptive state, and wrapped in a version-3 container
whose component table doubles as a byte-offset index:

* planes and stripes compose freely with every registered coding engine and
  with the process pool of :mod:`repro.parallel.codec` — the stream is
  byte-identical either way;
* an optional **inter-plane predictor** codes plane ``k > 0`` as the
  modular per-pixel delta to the reconstructed plane ``k - 1`` (the paper's
  GAP-style prediction reused across bands: correlated planes turn into
  near-zero residual images that the context modeller compresses far
  better);
* :func:`decode_plane` and :func:`decode_region` locate and decode only the
  cells they need through the index instead of the whole stream.

The delta predictor is *pixel-wise*, which keeps random access intact:
stripe ``s`` of plane ``k`` only ever needs stripe ``s`` of planes
``0..k-1``, so a region decode stays proportional to the region even on
delta-coded streams (a single-plane decode of plane ``k`` needs planes
``0..k``, still skipping all later planes).

Out-of-range ``plane``/``stripe_range`` *arguments* raise
:class:`~repro.exceptions.ConfigError` (a caller mistake); malformed or
lying containers raise :class:`~repro.exceptions.BitstreamError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.bitstream import component_spans, parse_stream_header
from repro.core.cellgrid import (
    decode_selection,
    encode_grid,
    plan_for_header,
    plane_residuals,
    reconstruct_plane_arrays,
)
from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage

__all__ = [
    "encode_planar",
    "encode_planar_with_statistics",
    "decode_planar",
    "decode_plane",
    "decode_region",
    "plane_residuals",
    "reconstruct_plane_arrays",
    "stream_index",
    "measure_random_access",
    "IndexEntry",
    "StreamIndex",
]


# ---------------------------------------------------------------------- #
# encoding
# ---------------------------------------------------------------------- #


def encode_planar_with_statistics(
    image: PlanarImage,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    stripes: int = 1,
    plane_delta: bool = False,
) -> Tuple[bytes, EncodeStatistics]:
    """Compress a planar image into a version-3 container, with statistics.

    Every plane is coded as ``stripes`` independent stripe payloads (the
    balanced partition of :func:`repro.parallel.partition.plan_stripes`), so
    the emitted stream is byte-identical to what the stripe-parallel codec
    produces for the same stripe count.
    """
    if config is None:
        config = CodecConfig.hardware(bit_depth=image.bit_depth)
    return encode_grid(
        image, config, engine=engine, stripes=stripes, plane_delta=plane_delta
    )


def encode_planar(
    image: PlanarImage,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
    stripes: int = 1,
    plane_delta: bool = False,
) -> bytes:
    """Compress a planar image into a version-3 container."""
    stream, _ = encode_planar_with_statistics(
        image, config, engine=engine, stripes=stripes, plane_delta=plane_delta
    )
    return stream


# ---------------------------------------------------------------------- #
# decoding
# ---------------------------------------------------------------------- #


def decode_planar(
    data: bytes, config: Optional[CodecConfig] = None, engine: str = "reference"
) -> PlanarImage:
    """Reconstruct the full planar image from any proposed-codec container.

    Version-1/2 (grey-scale) streams come back as a one-plane image, so this
    function is a universal decoder for every container version.
    """
    return decode_selection(data, config, engine=engine).planar_image()


def decode_plane(
    data: bytes,
    plane: int,
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
) -> GrayImage:
    """Decode a single component plane, touching only the bytes it needs.

    On an independently coded stream exactly the indexed cells of ``plane``
    are read.  On a delta-coded stream the predictor chain is walked, so
    planes ``0..plane`` are decoded (and everything after ``plane`` is still
    skipped).  A ``plane`` outside the stream raises
    :class:`~repro.exceptions.ConfigError`.
    """
    selection = decode_selection(data, config, engine=engine, planes=(plane,))
    return selection.plane_image(plane)


def decode_region(
    data: bytes,
    stripe_range: Tuple[int, int],
    config: Optional[CodecConfig] = None,
    engine: str = "reference",
) -> Union[GrayImage, PlanarImage]:
    """Decode the rows covered by stripes ``[start, stop)``, and only those.

    The return type matches what a full decode of the stream yields: grey
    (version-1/2) streams come back as a :class:`GrayImage` region, while
    version-3 streams — even single-plane ones — come back as a
    :class:`PlanarImage` region (all planes, region rows).  Because the
    inter-plane delta is pixel-wise, a region decode on a delta-coded
    stream still touches only the selected stripes of every plane.

    Version-1 streams hold a single stripe, so only ``(0, 1)`` is valid
    there; version-2/3 streams accept any sub-range of their stripe table.
    A range outside the stream's stripe table raises
    :class:`~repro.exceptions.ConfigError`.
    """
    return decode_selection(
        data, config, engine=engine, stripe_range=stripe_range
    ).image()


# ---------------------------------------------------------------------- #
# stream inspection
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class IndexEntry:
    """One (plane, stripe) cell of a stream's random-access index."""

    plane: int
    stripe: int
    start_row: int
    row_count: int
    offset: int
    length: int
    #: CRC-32 of the cell payload; ``None`` for pre-v3 streams (no index CRC).
    crc: Optional[int] = None

    def as_json(self) -> dict:
        return {
            "plane": self.plane,
            "stripe": self.stripe,
            "start_row": self.start_row,
            "row_count": self.row_count,
            "offset": self.offset,
            "length": self.length,
            "crc": "%08x" % self.crc if self.crc is not None else None,
        }


@dataclass(frozen=True)
class StreamIndex:
    """Parsed container metadata plus the full random-access index."""

    version: int
    codec: str
    width: int
    height: int
    bit_depth: int
    component_count: int
    stripe_count: int
    plane_delta: bool
    hardware: bool
    payload_length: int
    total_length: int
    entries: Tuple[IndexEntry, ...]

    def format_report(self) -> str:
        lines = [
            "container : version %d (%s)"
            % (
                self.version,
                {1: "single payload", 2: "striped", 3: "multi-component, indexed"}[
                    self.version
                ],
            ),
            "codec     : %s" % self.codec,
            "geometry  : %dx%d, %d component(s), %d bits/sample"
            % (self.width, self.height, self.component_count, self.bit_depth),
            "flags     : hardware=%s, plane-delta=%s"
            % ("yes" if self.hardware else "no", "yes" if self.plane_delta else "no"),
            "payload   : %d bytes in %d indexed cell(s) (%d bytes total)"
            % (self.payload_length, len(self.entries), self.total_length),
            "index     :",
            "  %5s %6s %12s %10s %10s %9s"
            % ("plane", "stripe", "rows", "offset", "length", "crc32"),
        ]
        for entry in self.entries:
            lines.append(
                "  %5d %6d [%4d,%5d) %10d %10d %9s"
                % (
                    entry.plane,
                    entry.stripe,
                    entry.start_row,
                    entry.start_row + entry.row_count,
                    entry.offset,
                    entry.length,
                    "%08x" % entry.crc if entry.crc is not None else "-",
                )
            )
        return "\n".join(lines)

    def as_json(self) -> dict:
        return {
            "version": self.version,
            "codec": self.codec,
            "width": self.width,
            "height": self.height,
            "bit_depth": self.bit_depth,
            "component_count": self.component_count,
            "stripe_count": self.stripe_count,
            "plane_delta": self.plane_delta,
            "hardware": self.hardware,
            "payload_length": self.payload_length,
            "total_length": self.total_length,
            "entries": [entry.as_json() for entry in self.entries],
        }


def stream_index(data: bytes) -> StreamIndex:
    """Parse a container and return its random-access index.

    Works for every container version and codec (the index never decodes
    payload bytes): version-1 streams report a single cell, version-2
    streams one cell per stripe, version-3 streams the plane-major grid.
    """
    header = parse_stream_header(data)
    plan = plan_for_header(header)
    entries = []
    for plane, plane_spans in enumerate(component_spans(header)):
        for spec, (offset, length) in zip(plan, plane_spans):
            entries.append(
                IndexEntry(
                    plane=plane,
                    stripe=spec.index,
                    start_row=spec.start_row,
                    row_count=spec.row_count,
                    offset=offset,
                    length=length,
                    crc=(
                        header.component_crcs[plane][spec.index]
                        if header.component_crcs
                        else None
                    ),
                )
            )
    return StreamIndex(
        version=header.version,
        codec=header.codec.name,
        width=header.width,
        height=header.height,
        bit_depth=header.bit_depth,
        component_count=header.component_count,
        stripe_count=header.stripe_count,
        plane_delta=header.plane_delta,
        hardware=bool(header.flags & 1),
        payload_length=header.payload_length,
        total_length=len(data),
        entries=tuple(entries),
    )


def measure_random_access(
    data: bytes, plane: int, config: Optional[CodecConfig] = None, repeats: int = 3
) -> Tuple[float, float]:
    """Wall-clock (full decode, single-plane decode) best-of-``repeats``.

    A convenience probe for the ``components`` experiment and the README
    examples: on an independently coded C-plane stream the plane decode
    should approach ``1/C`` of the full decode.
    """
    if repeats < 1:
        raise ConfigError("repeats must be at least 1, got %d" % repeats)
    best_full = float("inf")
    best_plane = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        decode_planar(data, config)
        best_full = min(best_full, time.perf_counter() - start)
        start = time.perf_counter()
        decode_plane(data, plane, config)
        best_plane = min(best_plane, time.perf_counter() - start)
    return best_full, best_plane
