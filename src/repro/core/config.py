"""Configuration of the proposed codec.

Every algorithmic constant the paper mentions is a field of
:class:`CodecConfig` so the benchmark harness can sweep it:

* ``count_bits`` — the probability-estimator frequency-count width swept in
  Figure 4 (10/12/14/16, the paper selects 14);
* ``texture_bits`` + ``energy_levels`` — the 6-bit texture pattern and 3-bit
  coding-context index that form the 512 compound contexts;
* ``bias_count_bits`` / ``bias_sum_magnitude_bits`` / ``bias_dividend_bits``
  — the Overflow-Guard register widths (5, 13 and 10 bits in the paper);
* ``use_lut_division`` — replace the exact mean computation by the 1 KByte
  reciprocal-LUT division of Section III;
* ``use_overflow_guard_aging`` — the count/sum halving that "ages" the
  statistics (the paper reports it slightly improves compression).

Two named presets exist: :meth:`CodecConfig.reference` (exact arithmetic,
used to isolate algorithmic behaviour) and :meth:`CodecConfig.hardware`
(every approximation the FPGA implementation makes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.exceptions import ConfigError

__all__ = ["CodecConfig", "DEFAULT_ENERGY_THRESHOLDS"]

#: Quantiser thresholds for the error-energy / coding-context index QE.
#: These are the CALIC-style activity thresholds; the paper quantises the
#: coding context "into 8 levels" without listing the boundaries, so we use
#: the standard CALIC values.
DEFAULT_ENERGY_THRESHOLDS: Tuple[int, ...] = (5, 15, 25, 42, 60, 85, 140)


@dataclass(frozen=True)
class CodecConfig:
    """Complete parameterisation of the proposed codec.

    The defaults reproduce the configuration evaluated in the paper:
    8-bit pixels, 512 compound contexts (64 texture patterns x 8 coding
    contexts), 14-bit frequency counts and all hardware approximations
    enabled.
    """

    #: Bits per pixel sample of the input image.
    bit_depth: int = 8
    #: Frequency-count width of the probability estimator (Figure 4 sweep).
    count_bits: int = 14
    #: Number of texture-pattern bits (six neighbours compared with the
    #: prediction gives 64 patterns).
    texture_bits: int = 6
    #: Number of quantised error-energy levels (the 3-bit coding context QE).
    energy_levels: int = 8
    #: Quantiser thresholds separating the energy levels (len == levels - 1).
    energy_thresholds: Tuple[int, ...] = field(default=DEFAULT_ENERGY_THRESHOLDS)
    #: GAP sharp-edge threshold.
    gap_sharp_threshold: int = 80
    #: GAP strong-edge threshold.
    gap_strong_threshold: int = 32
    #: GAP weak-edge threshold.
    gap_weak_threshold: int = 8
    #: Enable the per-context error feedback (bias cancellation).
    use_error_feedback: bool = True
    #: Width of the per-context error counter (Overflow Guard halves at max).
    bias_count_bits: int = 5
    #: Magnitude width of the per-context error sum (plus one sign bit).
    bias_sum_magnitude_bits: int = 13
    #: Bound on the dividend fed to the division (the paper uses 10 bits).
    bias_dividend_bits: int = 10
    #: Use the 1 KByte reciprocal LUT instead of exact division.
    use_lut_division: bool = True
    #: Halve sum and count when the count saturates ("aging"); disabling this
    #: is the ablation the paper mentions in Section III.
    use_overflow_guard_aging: bool = True
    #: Adaptation increment of the probability estimator trees.  The paper
    #: does not state the increment its coder IP uses; 16 gives the fast
    #: adaptation a hardware counter update can provide at no extra cost and
    #: is what the evaluation harness uses (see DESIGN.md).
    estimator_increment: int = 16
    #: Register precision of the binary arithmetic coder.
    coder_precision: int = 32

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #

    @property
    def alphabet_size(self) -> int:
        """Number of distinct pixel / mapped-error values."""
        return 1 << self.bit_depth

    @property
    def max_sample(self) -> int:
        """Largest pixel value."""
        return self.alphabet_size - 1

    @property
    def texture_patterns(self) -> int:
        """Number of texture patterns (2**texture_bits)."""
        return 1 << self.texture_bits

    @property
    def compound_contexts(self) -> int:
        """Number of compound contexts used by the error feedback (512)."""
        return self.texture_patterns * self.energy_levels

    @property
    def energy_index_bits(self) -> int:
        """Bits of the coding-context index QE."""
        return (self.energy_levels - 1).bit_length()

    @property
    def bias_count_max(self) -> int:
        """Maximum value of the per-context error counter (31 in the paper)."""
        return (1 << self.bias_count_bits) - 1

    @property
    def bias_dividend_max(self) -> int:
        """Maximum dividend magnitude accepted by the division (1023)."""
        return (1 << self.bias_dividend_bits) - 1

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #

    @classmethod
    def reference(cls, **overrides) -> "CodecConfig":
        """Exact-arithmetic configuration (no hardware approximations)."""
        config = cls(
            use_lut_division=False,
            bias_count_bits=16,
            bias_sum_magnitude_bits=24,
            bias_dividend_bits=24,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def hardware(cls, **overrides) -> "CodecConfig":
        """The configuration of the paper's FPGA implementation."""
        config = cls()
        return replace(config, **overrides) if overrides else config

    def with_count_bits(self, count_bits: int) -> "CodecConfig":
        """Return a copy with a different frequency-count width (Figure 4)."""
        return replace(self, count_bits=count_bits)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        if not 1 <= self.bit_depth <= 16:
            raise ConfigError("bit_depth must be in [1, 16], got %d" % self.bit_depth)
        if not 2 <= self.count_bits <= 30:
            raise ConfigError("count_bits must be in [2, 30], got %d" % self.count_bits)
        if not 1 <= self.texture_bits <= 8:
            raise ConfigError("texture_bits must be in [1, 8], got %d" % self.texture_bits)
        if self.energy_levels < 2 or self.energy_levels & (self.energy_levels - 1):
            raise ConfigError(
                "energy_levels must be a power of two >= 2, got %d" % self.energy_levels
            )
        if len(self.energy_thresholds) != self.energy_levels - 1:
            raise ConfigError(
                "need %d energy thresholds for %d levels, got %d"
                % (self.energy_levels - 1, self.energy_levels, len(self.energy_thresholds))
            )
        if list(self.energy_thresholds) != sorted(self.energy_thresholds):
            raise ConfigError("energy_thresholds must be non-decreasing")
        if not self.gap_sharp_threshold >= self.gap_strong_threshold >= self.gap_weak_threshold >= 0:
            raise ConfigError("GAP thresholds must satisfy sharp >= strong >= weak >= 0")
        if not 1 <= self.bias_count_bits <= 24:
            raise ConfigError(
                "bias_count_bits must be in [1, 24], got %d" % self.bias_count_bits
            )
        if not 1 <= self.bias_sum_magnitude_bits <= 32:
            raise ConfigError(
                "bias_sum_magnitude_bits must be in [1, 32], got %d"
                % self.bias_sum_magnitude_bits
            )
        if not 1 <= self.bias_dividend_bits <= self.bias_sum_magnitude_bits:
            raise ConfigError(
                "bias_dividend_bits must be in [1, %d], got %d"
                % (self.bias_sum_magnitude_bits, self.bias_dividend_bits)
            )
        if self.estimator_increment <= 0:
            raise ConfigError(
                "estimator_increment must be positive, got %d" % self.estimator_increment
            )
        if not 16 <= self.coder_precision <= 62:
            raise ConfigError(
                "coder_precision must be in [16, 62], got %d" % self.coder_precision
            )
        # The arithmetic coder requires every model total to stay below a
        # quarter of its register range; check the worst-case tree total.
        worst_tree_total = (1 << self.count_bits) * (self.alphabet_size + 1)
        if worst_tree_total >= 1 << (self.coder_precision - 2):
            raise ConfigError(
                "count_bits=%d with bit_depth=%d overflows a %d-bit coder"
                % (self.count_bits, self.bit_depth, self.coder_precision)
            )
