"""Error feedback / bias cancellation (Section III of the paper).

Each of the 512 compound contexts keeps the running ``sum`` and ``count`` of
the prediction errors observed in that context.  The mean error
``ē = sum / count`` (Equation 1) is the most probable prediction error in
the context and is added to the primary prediction to remove its systematic
bias: ``X̃ = X̂ + ē``.

The paper's hardware constraints are modelled explicitly:

* **Overflow Guard** — the count is a 5-bit register; when it reaches 31 both
  the count and the sum are halved, "aging" the statistics (the paper notes
  this slightly *improves* compression).  The sum is stored as 13 magnitude
  bits plus a sign.
* **LUT division** — a 1 KByte reciprocal table (512 entries × 16 bits)
  replaces the divider: the dividend is bounded to 10 bits (values larger
  than 1023 occur on well under 0.001 % of pixels and do not reflect typical
  context behaviour), and the mean is obtained with one multiply and one
  shift.  The exact-division path is kept for the ablation benchmark that
  verifies the approximation does not change the compression ratio.

Both paths are selected through :class:`~repro.core.config.CodecConfig`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import CodecConfig
from repro.exceptions import ModelStateError

__all__ = ["ReciprocalDivider", "BiasCorrector"]


class ReciprocalDivider:
    """Fixed-point division by small integers through a reciprocal ROM.

    The ROM holds ``entries`` 16-bit words: ``rom[c] = round(2**shift / c)``.
    A division ``dividend / c`` becomes ``(dividend * rom[c]) >> shift``.
    With ``entries = 512`` the ROM occupies exactly the paper's 1 KByte.
    """

    def __init__(self, entries: int = 512, shift: int = 15) -> None:
        if entries < 2:
            raise ModelStateError("reciprocal ROM needs at least 2 entries")
        if not 8 <= shift <= 30:
            raise ModelStateError("reciprocal shift must be in [8, 30], got %d" % shift)
        self.entries = entries
        self.shift = shift
        self._rom: List[int] = [0] * entries
        for divisor in range(1, entries):
            self._rom[divisor] = round((1 << shift) / divisor)

    @property
    def rom_bytes(self) -> int:
        """ROM size in bytes (16-bit entries)."""
        return self.entries * 2

    def rom_entry(self, divisor: int) -> int:
        """Raw ROM word for ``divisor`` (useful for the hardware model)."""
        if not 0 <= divisor < self.entries:
            raise ModelStateError("divisor %d outside ROM range" % divisor)
        return self._rom[divisor]

    def divide(self, dividend: int, divisor: int) -> int:
        """Approximate ``dividend / divisor`` (signed, magnitude-rounded).

        The half-LSB offset before the shift is free in hardware and keeps
        exact multiples (e.g. ``80 / 20``) from being truncated one short.
        """
        if divisor <= 0 or divisor >= self.entries:
            raise ModelStateError("divisor %d outside (0, %d)" % (divisor, self.entries))
        rounding = 1 << (self.shift - 1)
        magnitude = (abs(dividend) * self._rom[divisor] + rounding) >> self.shift
        return -magnitude if dividend < 0 else magnitude


class BiasCorrector:
    """Per-context error statistics and prediction adjustment."""

    def __init__(self, config: CodecConfig) -> None:
        self._config = config
        contexts = config.compound_contexts
        self._sums: List[int] = [0] * contexts
        self._counts: List[int] = [0] * contexts
        self._count_max = config.bias_count_max
        self._sum_max = (1 << config.bias_sum_magnitude_bits) - 1
        self._dividend_max = config.bias_dividend_max
        self._divider = ReciprocalDivider() if config.use_lut_division else None
        self.rescale_events = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def context_count(self) -> int:
        return len(self._sums)

    def statistics(self, context: int) -> Tuple[int, int]:
        """Return ``(sum, count)`` for a compound context."""
        self._check_context(context)
        return self._sums[context], self._counts[context]

    def mean_error(self, context: int) -> int:
        """The feedback value ``ē`` for ``context`` (0 when no history)."""
        self._check_context(context)
        count = self._counts[context]
        if count == 0:
            return 0
        total = self._sums[context]
        # Bound the dividend as the hardware does (Section III).
        if total > self._dividend_max:
            total = self._dividend_max
        elif total < -self._dividend_max:
            total = -self._dividend_max
        if self._divider is not None:
            return self._divider.divide(total, count)
        # Exact reference division with the same round-to-nearest-magnitude
        # semantics as the LUT path.
        magnitude = (abs(total) + count // 2) // count
        return -magnitude if total < 0 else magnitude

    def adjusted_prediction(self, context: int, predicted: int) -> int:
        """Apply the error feedback: ``X̃ = clamp(X̂ + ē)``."""
        if not self._config.use_error_feedback:
            return predicted
        adjusted = predicted + self.mean_error(context)
        if adjusted < 0:
            return 0
        if adjusted > self._config.max_sample:
            return self._config.max_sample
        return adjusted

    def memory_bits(self) -> int:
        """Context-memory size in bits (sum + sign + count per context)."""
        per_context = self._config.bias_sum_magnitude_bits + 1 + self._config.bias_count_bits
        return self.context_count * per_context

    # ------------------------------------------------------------------ #
    # adaptation
    # ------------------------------------------------------------------ #

    def update(self, context: int, error: int) -> None:
        """Fold the new prediction ``error`` into the context statistics.

        Implements the Overflow Guard: when the 5-bit count saturates both
        the count and the sum are halved before the new sample is added, so
        the stored mean is preserved while old data is aged out.
        """
        self._check_context(context)
        count = self._counts[context]
        total = self._sums[context]

        if count >= self._count_max:
            if self._config.use_overflow_guard_aging:
                count >>= 1
                total = -((-total) >> 1) if total < 0 else total >> 1
            else:
                # Ablation: freeze the statistics instead of aging them.
                return

        count += 1
        total += error
        if total > self._sum_max:
            total = self._sum_max
        elif total < -self._sum_max:
            total = -self._sum_max

        if count > self._count_max:
            raise ModelStateError("overflow guard failed to bound the context count")

        self._counts[context] = count
        self._sums[context] = total
        if count == self._count_max:
            self.rescale_events += 1

    def _check_context(self, context: int) -> None:
        if not 0 <= context < len(self._sums):
            raise ModelStateError(
                "compound context %d outside [0, %d)" % (context, len(self._sums))
            )
