"""Causal neighbourhood handling (Figure 2 of the paper).

The predictor and the context modeller look at seven causal neighbours of the
current pixel ``X``::

            NN  NNE
        NW  N   NE
    WW  W   X

Only pixels that have already been (de)coded may be referenced, so the
neighbourhood is built exclusively from the three most recent image rows —
exactly the three-row rotating line buffer the hardware keeps (Section III:
"we need to store 3 lines of image pixel values in memory ... 3 pointers ...
rotated ... so that the oldest line will be discarded").

Two window implementations are provided:

:class:`ThreeRowWindow`
    The hardware organisation: three row buffers plus rotation at the end of
    each line.  This is the default used by the codec.

Boundary policy (identical on encoder and decoder, so any deterministic
choice is lossless):

* first pixel of the image: all neighbours read mid-grey (half of the range);
* first row: the "north" neighbours fall back to ``W``;
* first/last column: missing west/east neighbours fall back to their nearest
  available causal neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ModelStateError

__all__ = ["Neighborhood", "ThreeRowWindow"]


@dataclass(frozen=True)
class Neighborhood:
    """The seven causal neighbours of the current pixel (Figure 2)."""

    w: int
    ww: int
    n: int
    nn: int
    ne: int
    nw: int
    nne: int

    def as_tuple(self) -> tuple:
        """Return ``(W, WW, N, NN, NE, NW, NNE)``."""
        return (self.w, self.ww, self.n, self.nn, self.ne, self.nw, self.nne)


class ThreeRowWindow:
    """Three-row rotating causal window over an image being (de)coded.

    The window stores the current row (being produced) and the two rows above
    it.  :meth:`push` appends the just-(de)coded pixel to the current row;
    :meth:`end_row` rotates the buffers exactly like the hardware rotates its
    three line pointers.

    Parameters
    ----------
    width:
        Image width in pixels.
    default:
        Value returned for neighbours that fall outside the image (mid-grey).
    """

    def __init__(self, width: int, default: int) -> None:
        if width <= 0:
            raise ModelStateError("window width must be positive, got %d" % width)
        self.width = width
        self.default = default
        # row_above2 = row y-2, row_above1 = row y-1, current = row y (partial).
        self._row_above2: Optional[List[int]] = None
        self._row_above1: Optional[List[int]] = None
        self._current: List[int] = []
        self._rows_completed = 0

    # ------------------------------------------------------------------ #
    # state updates
    # ------------------------------------------------------------------ #

    def push(self, value: int) -> None:
        """Record the pixel just (de)coded at the current position."""
        if len(self._current) >= self.width:
            raise ModelStateError("row overflow: call end_row() before pushing more pixels")
        self._current.append(value)

    def end_row(self) -> None:
        """Rotate the line buffers at the end of a row."""
        if len(self._current) != self.width:
            raise ModelStateError(
                "end_row() called after %d of %d pixels" % (len(self._current), self.width)
            )
        self._row_above2 = self._row_above1
        self._row_above1 = self._current
        self._current = []
        self._rows_completed += 1

    # ------------------------------------------------------------------ #
    # neighbourhood queries
    # ------------------------------------------------------------------ #

    def neighborhood(self, x: int) -> Neighborhood:
        """Return the causal neighbourhood of column ``x`` of the current row."""
        if not 0 <= x < self.width:
            raise ModelStateError("column %d outside row of width %d" % (x, self.width))
        if x != len(self._current):
            raise ModelStateError(
                "neighbourhood requested for column %d but %d pixels pushed"
                % (x, len(self._current))
            )

        current = self._current
        above1 = self._row_above1
        above2 = self._row_above2
        default = self.default
        width = self.width

        # West neighbours come from the current row.
        if x >= 1:
            w = current[x - 1]
        elif above1 is not None:
            w = above1[0]
        else:
            w = default
        ww = current[x - 2] if x >= 2 else w

        # North neighbours come from the row above (fall back to W on row 0).
        if above1 is not None:
            n = above1[x]
            nw = above1[x - 1] if x >= 1 else n
            ne = above1[x + 1] if x + 1 < width else n
        else:
            n = w
            nw = w
            ne = w

        # Row y-2 neighbours (fall back to the row-above values).
        if above2 is not None:
            nn = above2[x]
            nne = above2[x + 1] if x + 1 < width else nn
        else:
            nn = n
            nne = ne

        return Neighborhood(w=w, ww=ww, n=n, nn=nn, ne=ne, nw=nw, nne=nne)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def rows_completed(self) -> int:
        """Number of fully (de)coded rows so far."""
        return self._rows_completed

    def memory_bytes(self, bit_depth: int = 8) -> int:
        """Line-buffer storage in bytes (three rows of ``width`` samples)."""
        bytes_per_sample = (bit_depth + 7) // 8
        return 3 * self.width * bytes_per_sample
