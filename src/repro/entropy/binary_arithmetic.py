"""Binary arithmetic coder.

The paper's probability estimator walks a balanced binary tree from the root
to the leaf of the current symbol; every level produces one *binary decision*
(left or right) together with the probability of taking the left branch
(``left_count / node_total``).  Those decisions drive a binary arithmetic
coder — in the paper the configurable coder IP of Nunez-Yanez & Chouliaras
(reference [7]).

This module implements a functionally equivalent coder: an integer binary
arithmetic coder with configurable register precision and the classic
follow-bit (E3 scaling) treatment of carry propagation.  The encoder and
decoder stay in lock-step as long as they are fed the same probability
sequence, which is guaranteed by construction because both sides derive the
probabilities from identical adaptive models.

The coder is exact for probabilities expressed as integer counts
``(zero_count, total)`` with ``total`` bounded by a quarter of the register
range, which comfortably covers the 14-bit frequency counts the paper uses.
"""

from __future__ import annotations

from repro.exceptions import BitstreamError, ModelStateError
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["BinaryArithmeticEncoder", "BinaryArithmeticDecoder"]

#: Default register width.  32 bits keeps the coding loss negligible while
#: staying far below Python's unbounded-integer costs.
DEFAULT_PRECISION = 32


class _RegisterGeometry:
    """Shared register-bound bookkeeping for the encoder and the decoder."""

    def __init__(self, precision: int) -> None:
        if not 8 <= precision <= 62:
            raise ModelStateError(
                "arithmetic-coder precision must be in [8, 62], got %d" % precision
            )
        self.precision = precision
        self.top = (1 << precision) - 1
        self.half = 1 << (precision - 1)
        self.quarter = 1 << (precision - 2)
        self.three_quarters = self.half + self.quarter
        #: Largest model total for which the range split cannot collapse.
        self.max_total = self.quarter - 1

    def check_total(self, total: int) -> None:
        if total <= 0:
            raise ModelStateError("probability total must be positive, got %d" % total)
        if total > self.max_total:
            raise ModelStateError(
                "probability total %d exceeds coder capacity %d"
                % (total, self.max_total)
            )


class BinaryArithmeticEncoder:
    """Encode a stream of binary decisions with integer-count probabilities.

    Parameters
    ----------
    writer:
        The :class:`~repro.utils.bitio.BitWriter` (or compatible sink) that
        receives the code bits.
    precision:
        Register width in bits.

    Notes
    -----
    Call :meth:`encode_bit` once per decision and :meth:`finish` exactly once
    at the end of the stream; the terminating bits emitted by ``finish`` are
    required for the decoder to resolve the final symbols.
    """

    def __init__(self, writer: BitWriter, precision: int = DEFAULT_PRECISION) -> None:
        self._geometry = _RegisterGeometry(precision)
        self._writer = writer
        self._low = 0
        self._high = self._geometry.top
        self._pending = 0
        self._finished = False
        self._decisions = 0

    @property
    def decisions_encoded(self) -> int:
        """Number of binary decisions encoded so far."""
        return self._decisions

    def encode_bit(self, bit: int, zero_count: int, total: int) -> None:
        """Encode one binary decision.

        Parameters
        ----------
        bit:
            The decision to encode (0 or 1).
        zero_count:
            Model count associated with the decision value 0.  Must be
            positive when ``bit == 0`` and strictly less than ``total`` when
            ``bit == 1``.
        total:
            Sum of the counts of both decision values.
        """
        if self._finished:
            raise ModelStateError("encode_bit called after finish()")
        geometry = self._geometry
        geometry.check_total(total)
        if bit not in (0, 1):
            raise ModelStateError("binary decision must be 0 or 1, got %r" % bit)
        if bit == 0 and zero_count <= 0:
            raise ModelStateError("cannot encode bit 0 with zero probability")
        if bit == 1 and zero_count >= total:
            raise ModelStateError("cannot encode bit 1 with zero probability")
        if not 0 <= zero_count <= total:
            raise ModelStateError(
                "zero_count %d outside [0, %d]" % (zero_count, total)
            )

        span = self._high - self._low + 1
        split = self._low + (span * zero_count) // total - 1
        if bit == 0:
            self._high = split
        else:
            self._low = split + 1
        self._renormalise()
        self._decisions += 1

    def finish(self) -> None:
        """Flush the terminating bits.  Must be called exactly once."""
        if self._finished:
            raise ModelStateError("finish() called twice")
        self._finished = True
        geometry = self._geometry
        self._pending += 1
        if self._low < geometry.quarter:
            self._emit(0)
        else:
            self._emit(1)

    def _renormalise(self) -> None:
        geometry = self._geometry
        while True:
            if self._high < geometry.half:
                self._emit(0)
            elif self._low >= geometry.half:
                self._emit(1)
                self._low -= geometry.half
                self._high -= geometry.half
            elif (
                self._low >= geometry.quarter
                and self._high < geometry.three_quarters
            ):
                self._pending += 1
                self._low -= geometry.quarter
                self._high -= geometry.quarter
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        if self._pending:
            # Batched carry resolution: all pending bits are the complement
            # of the bit just emitted, so they go out as one run.
            self._writer.write_run(1 - bit, self._pending)
            self._pending = 0


class BinaryArithmeticDecoder:
    """Decode a stream produced by :class:`BinaryArithmeticEncoder`.

    The decoder must be driven with exactly the same probability sequence the
    encoder saw; the adaptive models on both sides guarantee this as long as
    they are updated with the decoded decisions in the same order.
    """

    def __init__(self, reader: BitReader, precision: int = DEFAULT_PRECISION) -> None:
        self._geometry = _RegisterGeometry(precision)
        self._reader = reader
        self._low = 0
        self._high = self._geometry.top
        self._code = 0
        for _ in range(precision):
            self._code = (self._code << 1) | reader.read_bit_or_zero()
        self._decisions = 0

    @property
    def decisions_decoded(self) -> int:
        """Number of binary decisions decoded so far."""
        return self._decisions

    def decode_bit(self, zero_count: int, total: int) -> int:
        """Decode and return the next binary decision."""
        geometry = self._geometry
        geometry.check_total(total)
        if not 0 <= zero_count <= total:
            raise ModelStateError(
                "zero_count %d outside [0, %d]" % (zero_count, total)
            )

        span = self._high - self._low + 1
        split = self._low + (span * zero_count) // total - 1
        if self._code <= split:
            if zero_count <= 0:
                raise BitstreamError("decoded a decision the model deems impossible")
            bit = 0
            self._high = split
        else:
            if zero_count >= total:
                raise BitstreamError("decoded a decision the model deems impossible")
            bit = 1
            self._low = split + 1
        self._renormalise()
        self._decisions += 1
        return bit

    def _renormalise(self) -> None:
        geometry = self._geometry
        while True:
            if self._high < geometry.half:
                pass
            elif self._low >= geometry.half:
                self._low -= geometry.half
                self._high -= geometry.half
                self._code -= geometry.half
            elif (
                self._low >= geometry.quarter
                and self._high < geometry.three_quarters
            ):
                self._low -= geometry.quarter
                self._high -= geometry.quarter
                self._code -= geometry.quarter
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._code = (self._code << 1) | self._reader.read_bit_or_zero()
