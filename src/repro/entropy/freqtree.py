"""Balanced binary frequency trees (the paper's probability estimator core).

Section IV of the paper describes the probability estimator as follows: each
coding context owns *a balanced binary tree with 2^n nodes*, one leaf per
symbol of the alphabet; every leaf stores a frequency count of configurable
width (Fig. 4 sweeps 10/12/14/16 bits and selects 14).  Encoding a symbol
walks the tree from the root to the symbol's leaf, and every left/right
decision is handed to the binary arithmetic coder together with the
probability of the left branch (``left_subtree_count / node_count``).

When any leaf count reaches its maximum all counts in the tree are halved;
counts that were 1 become 0, and a symbol with count 0 can no longer be coded
by the dynamic tree — it *escapes* to a static (uniform) tree and is sent
as-is.

This module implements both trees:

:class:`FrequencyTree`
    The adaptive ("dynamic") tree with width-limited counts, halving rescale
    and a dedicated escape leaf (pinned at count ≥ 1) used to signal escapes
    to the decoder.

:class:`StaticTree`
    The non-adaptive uniform tree used to transmit escaped symbols verbatim
    through the same arithmetic coder (so the bitstream remains a single
    arithmetic-coded sequence).
"""

from __future__ import annotations

from typing import List, Optional

from repro.entropy.binary_arithmetic import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
)
from repro.exceptions import ModelStateError
from repro.utils.validation import require_in_range, require_positive

__all__ = ["FrequencyTree", "StaticTree", "symbol_path_table"]


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


_PATH_TABLE_CACHE: dict = {}


def symbol_path_table(depth: int) -> List[tuple]:
    """Precomputed root-to-leaf paths for every symbol of a depth-``depth`` tree.

    ``table[symbol]`` is a tuple of ``(node_index, direction)`` pairs, one per
    tree level, where ``node_index`` is the implicit-heap index of the node
    *visited* at that level and ``direction`` the branch taken there.  The
    paths depend only on the tree depth (the heap layout is static), so the
    table is shared by every tree of the same geometry and cached globally.
    The fast engine binds one row per symbol instead of re-deriving the shift
    arithmetic on every pixel.
    """
    if depth < 0:
        raise ModelStateError("tree depth must be non-negative, got %d" % depth)
    cached = _PATH_TABLE_CACHE.get(depth)
    if cached is not None:
        return cached
    table: List[tuple] = []
    for symbol in range(1 << depth):
        path = []
        node = 1
        for level in range(depth - 1, -1, -1):
            direction = (symbol >> level) & 1
            path.append((node, direction))
            node = 2 * node + direction
        table.append(tuple(path))
    _PATH_TABLE_CACHE[depth] = table
    return table


class FrequencyTree:
    """Adaptive balanced binary frequency tree with width-limited counts.

    Parameters
    ----------
    alphabet_size:
        Number of real symbols (256 for 8-bit pixels).
    count_bits:
        Width of each leaf counter; a leaf reaching ``2**count_bits - 1``
        triggers a halving rescale of the whole tree.
    with_escape:
        Reserve an extra leaf for the escape symbol.  Its count is pinned at
        one or above so an escape can always be signalled.
    increment:
        Amount added to a leaf count per observation.

    Notes
    -----
    The tree is stored as an implicit heap: ``counts[i]`` for
    ``i >= num_leaves`` are the leaves, and every internal node holds the sum
    of its two children, so the left-branch probability at any node is
    available in O(1) and an update touches O(log n) nodes.
    """

    def __init__(
        self,
        alphabet_size: int,
        count_bits: int = 14,
        with_escape: bool = True,
        increment: int = 1,
    ) -> None:
        require_positive("alphabet_size", alphabet_size)
        require_in_range("count_bits", count_bits, 2, 30)
        require_positive("increment", increment)
        if alphabet_size < 2:
            raise ModelStateError("alphabet_size must be at least 2")

        self.alphabet_size = alphabet_size
        self.count_bits = count_bits
        self.with_escape = with_escape
        self.increment = increment
        self.max_count = (1 << count_bits) - 1

        symbol_slots = alphabet_size + (1 if with_escape else 0)
        self.num_leaves = _next_power_of_two(symbol_slots)
        self.depth = self.num_leaves.bit_length() - 1
        self.escape_index: Optional[int] = alphabet_size if with_escape else None

        # counts[1] is the root; counts[num_leaves + s] is the leaf of symbol s.
        self._counts: List[int] = [0] * (2 * self.num_leaves)
        for symbol in range(alphabet_size):
            self._counts[self.num_leaves + symbol] = 1
        if with_escape:
            self._counts[self.num_leaves + alphabet_size] = 1
        self._rebuild_internal()
        self.rescale_count = 0
        self.escape_capable = with_escape

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def total(self) -> int:
        """Total count over all leaves (the root value)."""
        return self._counts[1]

    @property
    def counts(self) -> List[int]:
        """Live view of the implicit-heap count array.

        ``counts[1]`` is the root, ``counts[num_leaves + s]`` the leaf of
        symbol ``s``.  The fast engine binds this list locally and performs
        the tree walk and count updates inline; mutations through the view
        are the tree's own state, so :meth:`rescale` keeps working on it.
        """
        return self._counts

    def path_table(self) -> List[tuple]:
        """The shared per-symbol ``(node, direction)`` path table for this tree."""
        return symbol_path_table(self.depth)

    def rescale(self) -> None:
        """Public halving rescale (used by the fast engine's inline update)."""
        self._rescale()

    def count(self, symbol: int) -> int:
        """Current count of ``symbol`` (the escape leaf included)."""
        self._check_symbol(symbol, allow_escape=True)
        return self._counts[self.num_leaves + symbol]

    def can_encode(self, symbol: int) -> bool:
        """True when ``symbol`` has non-zero probability in this tree."""
        return self.count(symbol) > 0

    def memory_bits(self) -> int:
        """Storage the hardware needs for this tree (all node counters).

        Internal nodes hold sums of up to ``num_leaves`` leaf counts, so they
        are wider than the leaves; this mirrors the SRAM sizing of the paper's
        probability-estimator block (4 KBytes for eight 256-leaf trees).
        """
        bits = 0
        for level in range(self.depth + 1):
            nodes_at_level = 1 << level
            width = self.count_bits + (self.depth - level)
            bits += nodes_at_level * width
        return bits

    # ------------------------------------------------------------------ #
    # coding
    # ------------------------------------------------------------------ #

    def encode_symbol(self, encoder: BinaryArithmeticEncoder, symbol: int) -> int:
        """Encode the root-to-leaf path of ``symbol``; return decisions used.

        The symbol must currently have a non-zero count (callers escape to the
        static tree otherwise).
        """
        self._check_symbol(symbol, allow_escape=True)
        leaf = self.num_leaves + symbol
        if self._counts[leaf] <= 0:
            raise ModelStateError(
                "symbol %d has zero count; encode the escape symbol instead" % symbol
            )
        decisions = 0
        node = 1
        for level in range(self.depth - 1, -1, -1):
            direction = (symbol >> level) & 1
            left = self._counts[2 * node]
            total = self._counts[node]
            encoder.encode_bit(direction, left, total)
            node = 2 * node + direction
            decisions += 1
        return decisions

    def decode_symbol(self, decoder: BinaryArithmeticDecoder) -> int:
        """Decode one root-to-leaf path and return the leaf's symbol index."""
        node = 1
        symbol = 0
        for _ in range(self.depth):
            left = self._counts[2 * node]
            total = self._counts[node]
            bit = decoder.decode_bit(left, total)
            node = 2 * node + bit
            symbol = (symbol << 1) | bit
        return symbol

    def code_length_bits(self, symbol: int) -> float:
        """Ideal code length (in bits) the tree currently assigns to ``symbol``.

        Used by the bit-rate estimation tools; it is the sum of the per-level
        decision entropies along the path.
        """
        import math

        self._check_symbol(symbol, allow_escape=True)
        length = 0.0
        node = 1
        for level in range(self.depth - 1, -1, -1):
            direction = (symbol >> level) & 1
            left = self._counts[2 * node]
            total = self._counts[node]
            branch = left if direction == 0 else total - left
            if branch <= 0:
                raise ModelStateError("zero-probability branch on path")
            length += math.log2(total / branch)
            node = 2 * node + direction
        return length

    # ------------------------------------------------------------------ #
    # adaptation
    # ------------------------------------------------------------------ #

    def update(self, symbol: int) -> bool:
        """Record one occurrence of ``symbol``.

        Returns ``True`` when the update triggered a halving rescale (the
        event that can create zero counts and hence future escapes).
        """
        self._check_symbol(symbol, allow_escape=True)
        rescaled = False
        leaf = self.num_leaves + symbol
        if self._counts[leaf] + self.increment > self.max_count:
            self._rescale()
            rescaled = True
        self._counts[leaf] += self.increment
        node = leaf >> 1
        while node:
            self._counts[node] += self.increment
            node >>= 1
        return rescaled

    def _rescale(self) -> None:
        """Halve every leaf count (pinning the escape leaf at ≥ 1)."""
        for leaf in range(self.num_leaves, 2 * self.num_leaves):
            self._counts[leaf] >>= 1
        if self.with_escape:
            escape_leaf = self.num_leaves + self.alphabet_size
            if self._counts[escape_leaf] < 1:
                self._counts[escape_leaf] = 1
        self._rebuild_internal()
        self.rescale_count += 1

    def _rebuild_internal(self) -> None:
        for node in range(self.num_leaves - 1, 0, -1):
            self._counts[node] = self._counts[2 * node] + self._counts[2 * node + 1]
        if self._counts[1] <= 0:
            raise ModelStateError("frequency tree total collapsed to zero")

    def _check_symbol(self, symbol: int, allow_escape: bool) -> None:
        limit = self.alphabet_size
        if allow_escape and self.with_escape:
            limit += 1
        if not 0 <= symbol < limit:
            raise ModelStateError(
                "symbol %d outside tree range [0, %d)" % (symbol, limit)
            )


class StaticTree:
    """Uniform, non-adaptive tree used to transmit escaped symbols.

    Every decision on the root-to-leaf path has probability one half, so an
    escaped symbol costs exactly ``log2(alphabet_size)`` bits — the paper's
    "sent as it is".  Routing those bits through the arithmetic coder (rather
    than writing them raw) keeps the output a single arithmetic-coded stream,
    which is what the hardware does.
    """

    def __init__(self, alphabet_size: int) -> None:
        require_positive("alphabet_size", alphabet_size)
        self.alphabet_size = alphabet_size
        self.num_leaves = _next_power_of_two(alphabet_size)
        self.depth = self.num_leaves.bit_length() - 1

    def encode_symbol(self, encoder: BinaryArithmeticEncoder, symbol: int) -> int:
        """Encode ``symbol`` with uniform per-level decisions."""
        if not 0 <= symbol < self.alphabet_size:
            raise ModelStateError(
                "symbol %d outside static tree range [0, %d)"
                % (symbol, self.alphabet_size)
            )
        for level in range(self.depth - 1, -1, -1):
            encoder.encode_bit((symbol >> level) & 1, 1, 2)
        return self.depth

    def decode_symbol(self, decoder: BinaryArithmeticDecoder) -> int:
        """Decode a symbol written by :meth:`encode_symbol`."""
        symbol = 0
        for _ in range(self.depth):
            symbol = (symbol << 1) | decoder.decode_bit(1, 2)
        if symbol >= self.alphabet_size:
            raise ModelStateError(
                "static tree decoded %d outside alphabet of %d"
                % (symbol, self.alphabet_size)
            )
        return symbol
