"""Golomb-Rice codes.

Both low-complexity baselines the paper compares against (JPEG-LS / LOCO-I
and SLP) use Golomb-Rice coding of mapped prediction errors.  Two variants
are provided:

``golomb_rice_encode`` / ``golomb_rice_decode``
    The plain Rice code GR(k): the value is split into a quotient coded in
    unary and ``k`` remainder bits.

``limited_golomb_encode`` / ``limited_golomb_decode``
    The length-limited variant used by JPEG-LS (ITU-T T.87 §A.5.3): when the
    unary quotient would exceed ``limit - qbpp - 1`` bits the value is
    escaped and written verbatim in ``qbpp`` bits.  This bounds the worst-case
    code length per sample, which matters for a hardware implementation.
"""

from __future__ import annotations

from repro.exceptions import BitstreamError
from repro.utils.bitio import BitReader, BitWriter

__all__ = [
    "golomb_rice_encode",
    "golomb_rice_decode",
    "limited_golomb_encode",
    "limited_golomb_decode",
    "golomb_rice_code_length",
]

#: Safety bound on unary runs while decoding plain Rice codes.
_MAX_UNARY_RUN = 1 << 16


def golomb_rice_encode(writer: BitWriter, value: int, k: int) -> None:
    """Encode a non-negative ``value`` with Rice parameter ``k``.

    The quotient ``value >> k`` is written in unary (zeros terminated by a
    one), followed by the ``k`` low-order remainder bits.
    """
    if value < 0:
        raise ValueError("Golomb-Rice values must be non-negative, got %d" % value)
    if k < 0:
        raise ValueError("Rice parameter must be non-negative, got %d" % k)
    quotient = value >> k
    writer.write_unary(quotient)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def golomb_rice_decode(reader: BitReader, k: int) -> int:
    """Decode a value encoded by :func:`golomb_rice_encode`."""
    if k < 0:
        raise ValueError("Rice parameter must be non-negative, got %d" % k)
    quotient = reader.read_unary(limit=_MAX_UNARY_RUN)
    remainder = reader.read_bits(k) if k else 0
    return (quotient << k) | remainder


def golomb_rice_code_length(value: int, k: int) -> int:
    """Return the number of bits :func:`golomb_rice_encode` would emit."""
    if value < 0:
        raise ValueError("Golomb-Rice values must be non-negative, got %d" % value)
    if k < 0:
        raise ValueError("Rice parameter must be non-negative, got %d" % k)
    return (value >> k) + 1 + k


def limited_golomb_encode(
    writer: BitWriter, value: int, k: int, limit: int, qbpp: int
) -> None:
    """Encode ``value`` with the JPEG-LS length-limited Golomb code LG(k, limit).

    Parameters
    ----------
    writer:
        Destination bit sink.
    value:
        Non-negative mapped error value.
    k:
        Golomb-Rice parameter.
    limit:
        Maximum code length in bits (JPEG-LS uses ``2 * (bpp + max(8, bpp))``
        by default; 32 for 8-bit samples).
    qbpp:
        Number of bits needed to represent a mapped error verbatim.
    """
    if value < 0:
        raise ValueError("value must be non-negative, got %d" % value)
    if limit <= qbpp + 1:
        raise ValueError("limit %d too small for qbpp %d" % (limit, qbpp))
    quotient = value >> k
    if quotient < limit - qbpp - 1:
        writer.write_unary(quotient)
        if k:
            writer.write_bits(value & ((1 << k) - 1), k)
    else:
        # Escape: limit - qbpp - 1 zeros, a one, then the value - 1 verbatim.
        writer.write_unary(limit - qbpp - 1)
        writer.write_bits(value - 1, qbpp)


def limited_golomb_decode(reader: BitReader, k: int, limit: int, qbpp: int) -> int:
    """Decode a value encoded by :func:`limited_golomb_encode`."""
    if limit <= qbpp + 1:
        raise ValueError("limit %d too small for qbpp %d" % (limit, qbpp))
    quotient = reader.read_unary(limit=limit)
    if quotient < limit - qbpp - 1:
        remainder = reader.read_bits(k) if k else 0
        return (quotient << k) | remainder
    if quotient != limit - qbpp - 1:
        raise BitstreamError(
            "limited Golomb code escape marker corrupted (run of %d)" % quotient
        )
    return reader.read_bits(qbpp) + 1
