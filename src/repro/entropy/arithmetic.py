"""Multi-symbol arithmetic coder.

The proposed codec only ever codes *binary* decisions (see
:mod:`repro.entropy.binary_arithmetic`), but the CALIC baseline and the
general-data path of the universal compressor code whole symbols against a
cumulative-frequency model.  This module provides the classic
Witten–Neal–Cleary integer arithmetic coder for that purpose.

The coder interface is expressed in cumulative counts so it can be shared by
any model that can answer "what is the cumulative range of symbol *s*?":

* :meth:`ArithmeticEncoder.encode` takes ``(cum_low, cum_high, total)``.
* :meth:`ArithmeticDecoder.decode_target` returns a value the model converts
  back into a symbol, after which :meth:`ArithmeticDecoder.consume` advances
  the decoder state.
"""

from __future__ import annotations

from repro.exceptions import BitstreamError, ModelStateError
from repro.utils.bitio import BitReader, BitWriter

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder"]

DEFAULT_PRECISION = 32


class _Geometry:
    def __init__(self, precision: int) -> None:
        if not 8 <= precision <= 62:
            raise ModelStateError(
                "arithmetic-coder precision must be in [8, 62], got %d" % precision
            )
        self.precision = precision
        self.top = (1 << precision) - 1
        self.half = 1 << (precision - 1)
        self.quarter = 1 << (precision - 2)
        self.three_quarters = self.half + self.quarter
        self.max_total = self.quarter - 1


class ArithmeticEncoder:
    """Encode symbols described by cumulative-frequency ranges."""

    def __init__(self, writer: BitWriter, precision: int = DEFAULT_PRECISION) -> None:
        self._geometry = _Geometry(precision)
        self._writer = writer
        self._low = 0
        self._high = self._geometry.top
        self._pending = 0
        self._finished = False

    def encode(self, cum_low: int, cum_high: int, total: int) -> None:
        """Encode a symbol occupying ``[cum_low, cum_high)`` out of ``total``."""
        if self._finished:
            raise ModelStateError("encode called after finish()")
        geometry = self._geometry
        if total <= 0 or total > geometry.max_total:
            raise ModelStateError(
                "model total %d outside (0, %d]" % (total, geometry.max_total)
            )
        if not 0 <= cum_low < cum_high <= total:
            raise ModelStateError(
                "invalid cumulative range [%d, %d) of %d" % (cum_low, cum_high, total)
            )
        span = self._high - self._low + 1
        self._high = self._low + (span * cum_high) // total - 1
        self._low = self._low + (span * cum_low) // total
        self._renormalise()

    def finish(self) -> None:
        """Flush the terminating bits.  Must be called exactly once."""
        if self._finished:
            raise ModelStateError("finish() called twice")
        self._finished = True
        self._pending += 1
        if self._low < self._geometry.quarter:
            self._emit(0)
        else:
            self._emit(1)

    def _renormalise(self) -> None:
        geometry = self._geometry
        while True:
            if self._high < geometry.half:
                self._emit(0)
            elif self._low >= geometry.half:
                self._emit(1)
                self._low -= geometry.half
                self._high -= geometry.half
            elif self._low >= geometry.quarter and self._high < geometry.three_quarters:
                self._pending += 1
                self._low -= geometry.quarter
                self._high -= geometry.quarter
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        while self._pending:
            self._writer.write_bit(1 - bit)
            self._pending -= 1


class ArithmeticDecoder:
    """Decode a stream produced by :class:`ArithmeticEncoder`."""

    def __init__(self, reader: BitReader, precision: int = DEFAULT_PRECISION) -> None:
        self._geometry = _Geometry(precision)
        self._reader = reader
        self._low = 0
        self._high = self._geometry.top
        self._code = 0
        for _ in range(precision):
            self._code = (self._code << 1) | reader.read_bit_or_zero()

    def decode_target(self, total: int) -> int:
        """Return a cumulative-count target in ``[0, total)``.

        The caller's model maps the target back to a symbol whose cumulative
        range contains it, then calls :meth:`consume` with that range.
        """
        geometry = self._geometry
        if total <= 0 or total > geometry.max_total:
            raise ModelStateError(
                "model total %d outside (0, %d]" % (total, geometry.max_total)
            )
        span = self._high - self._low + 1
        target = ((self._code - self._low + 1) * total - 1) // span
        if not 0 <= target < total:
            raise BitstreamError(
                "arithmetic decoder target %d outside model range %d" % (target, total)
            )
        return target

    def consume(self, cum_low: int, cum_high: int, total: int) -> None:
        """Advance the decoder past the symbol with range ``[cum_low, cum_high)``."""
        if not 0 <= cum_low < cum_high <= total:
            raise ModelStateError(
                "invalid cumulative range [%d, %d) of %d" % (cum_low, cum_high, total)
            )
        span = self._high - self._low + 1
        self._high = self._low + (span * cum_high) // total - 1
        self._low = self._low + (span * cum_low) // total
        self._renormalise()

    def _renormalise(self) -> None:
        geometry = self._geometry
        while True:
            if self._high < geometry.half:
                pass
            elif self._low >= geometry.half:
                self._low -= geometry.half
                self._high -= geometry.half
                self._code -= geometry.half
            elif self._low >= geometry.quarter and self._high < geometry.three_quarters:
                self._low -= geometry.quarter
                self._high -= geometry.quarter
                self._code -= geometry.quarter
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._code = (self._code << 1) | self._reader.read_bit_or_zero()
