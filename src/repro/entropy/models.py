"""Adaptive frequency models for the multi-symbol arithmetic coder.

These models back the CALIC baseline's error coder and the general-data path
of the universal compressor (Figure 1 of the paper).  They answer cumulative
frequency queries and adapt by incrementing the count of each coded symbol,
halving all counts when the total would exceed the coder's capacity.

Two flavours exist:

:class:`AdaptiveModel`
    A flat adaptive model over an arbitrary alphabet.  Cumulative counts are
    maintained in a Fenwick (binary indexed) tree so both queries and updates
    are ``O(log n)`` — important because the CALIC baseline queries it once
    per pixel over a 256+ symbol alphabet.

:class:`AdaptiveByteModel`
    An order-*k* context-mixing wrapper used for general (non-image) data:
    one :class:`AdaptiveModel` per context hash of the previous ``k`` bytes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import ModelStateError

__all__ = ["AdaptiveModel", "AdaptiveByteModel"]


class _FenwickTree:
    """A Fenwick tree over non-negative integer counts."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of counts for positions ``0 .. index - 1``."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def find(self, target: int) -> int:
        """Return the smallest index whose prefix sum exceeds ``target``."""
        position = 0
        remaining = target
        bit = 1
        while bit << 1 <= self._size:
            bit <<= 1
        while bit:
            nxt = position + bit
            if nxt <= self._size and self._tree[nxt] <= remaining:
                position = nxt
                remaining -= self._tree[nxt]
            bit >>= 1
        return position


class AdaptiveModel:
    """Flat adaptive frequency model over ``alphabet_size`` symbols.

    Parameters
    ----------
    alphabet_size:
        Number of distinct symbols.
    max_total:
        When the total count would exceed this bound all counts are halved
        (never below one), mirroring the frequency-count rescaling of the
        paper's probability estimator.
    increment:
        Count added to a symbol each time it is observed.  A larger increment
        makes the model adapt faster at the cost of coarser probabilities.
    """

    def __init__(
        self,
        alphabet_size: int,
        max_total: int = 1 << 16,
        increment: int = 32,
    ) -> None:
        if alphabet_size <= 1:
            raise ModelStateError(
                "alphabet_size must be at least 2, got %d" % alphabet_size
            )
        if max_total < 2 * alphabet_size:
            raise ModelStateError(
                "max_total %d too small for alphabet of %d" % (max_total, alphabet_size)
            )
        if increment <= 0:
            raise ModelStateError("increment must be positive, got %d" % increment)
        self.alphabet_size = alphabet_size
        self.max_total = max_total
        self.increment = increment
        self._counts = [1] * alphabet_size
        self._fenwick = _FenwickTree(alphabet_size)
        for symbol in range(alphabet_size):
            self._fenwick.add(symbol, 1)
        self._total = alphabet_size

    @property
    def total(self) -> int:
        """Current total count over the whole alphabet."""
        return self._total

    def count(self, symbol: int) -> int:
        """Current count of ``symbol``."""
        self._check_symbol(symbol)
        return self._counts[symbol]

    def interval(self, symbol: int) -> Tuple[int, int, int]:
        """Return ``(cum_low, cum_high, total)`` for ``symbol``."""
        self._check_symbol(symbol)
        low = self._fenwick.prefix_sum(symbol)
        return low, low + self._counts[symbol], self._total

    def symbol_from_target(self, target: int) -> int:
        """Map a decoder target (cumulative count) back to its symbol."""
        if not 0 <= target < self._total:
            raise ModelStateError(
                "target %d outside cumulative total %d" % (target, self._total)
            )
        return self._fenwick.find(target)

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol`` (with rescaling)."""
        self._check_symbol(symbol)
        if self._total + self.increment > self.max_total:
            self._rescale()
        self._counts[symbol] += self.increment
        self._fenwick.add(symbol, self.increment)
        self._total += self.increment

    def _rescale(self) -> None:
        counts = [(c + 1) >> 1 for c in self._counts]
        self._counts = counts
        self._fenwick = _FenwickTree(self.alphabet_size)
        for symbol, count in enumerate(counts):
            self._fenwick.add(symbol, count)
        self._total = sum(counts)

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self.alphabet_size:
            raise ModelStateError(
                "symbol %d outside alphabet of size %d" % (symbol, self.alphabet_size)
            )


class AdaptiveByteModel:
    """Order-*k* adaptive byte model for general data.

    This is the "Lossless Data Modelling" front-end of the paper's Figure 1:
    a context model over raw bytes that shares the arithmetic-coder back-end
    with the image path.  Contexts are the previous ``order`` bytes; unseen
    contexts lazily allocate a fresh :class:`AdaptiveModel`.

    A small ``max_contexts`` bound keeps memory predictable (hardware would
    hash into a fixed SRAM); when the bound is hit new contexts fall back to
    the order-0 model.
    """

    def __init__(
        self,
        order: int = 2,
        max_total: int = 1 << 14,
        increment: int = 24,
        max_contexts: int = 1 << 16,
    ) -> None:
        if order < 0:
            raise ModelStateError("order must be non-negative, got %d" % order)
        self.order = order
        self.max_total = max_total
        self.increment = increment
        self.max_contexts = max_contexts
        self._contexts: Dict[Tuple[int, ...], AdaptiveModel] = {}
        self._order0 = AdaptiveModel(256, max_total=max_total, increment=increment)
        self._history: List[int] = []

    @property
    def context_count(self) -> int:
        """Number of higher-order contexts allocated so far."""
        return len(self._contexts)

    def current_model(self) -> AdaptiveModel:
        """Return the model conditioned on the current history."""
        if self.order == 0 or len(self._history) < self.order:
            return self._order0
        key = tuple(self._history[-self.order:])
        model = self._contexts.get(key)
        if model is None:
            if len(self._contexts) >= self.max_contexts:
                return self._order0
            model = AdaptiveModel(
                256, max_total=self.max_total, increment=self.increment
            )
            self._contexts[key] = model
        return model

    def observe(self, byte: int) -> None:
        """Update the conditioned model and the history with ``byte``."""
        if not 0 <= byte <= 255:
            raise ModelStateError("byte value %d outside [0, 255]" % byte)
        self.current_model().update(byte)
        self._order0.update(byte)
        self._history.append(byte)
        if len(self._history) > self.order:
            del self._history[: len(self._history) - self.order]

    def reset_history(self) -> None:
        """Forget the byte history (used at block boundaries)."""
        self._history.clear()
