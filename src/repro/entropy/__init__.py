"""Entropy-coding substrate.

This package contains every entropy coder the reproduction needs:

* :mod:`repro.entropy.binary_arithmetic` — the binary arithmetic coder that
  the paper drives with tree-walk decisions (after Nunez-Yanez & Chouliaras,
  reference [7] of the paper).
* :mod:`repro.entropy.arithmetic` — a multi-symbol arithmetic coder used by
  the CALIC baseline.
* :mod:`repro.entropy.golomb` — Golomb-Rice codes (plain and JPEG-LS
  limited-length variant) used by the JPEG-LS and SLP baselines.
* :mod:`repro.entropy.freqtree` — the balanced binary frequency tree that
  implements the paper's probability estimator.
* :mod:`repro.entropy.models` — simple adaptive frequency models shared by
  the multi-symbol coder and the universal compressor.
"""

from repro.entropy.binary_arithmetic import BinaryArithmeticDecoder, BinaryArithmeticEncoder
from repro.entropy.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.freqtree import FrequencyTree, StaticTree
from repro.entropy.golomb import (
    golomb_rice_decode,
    golomb_rice_encode,
    limited_golomb_decode,
    limited_golomb_encode,
)
from repro.entropy.models import AdaptiveByteModel, AdaptiveModel

__all__ = [
    "BinaryArithmeticEncoder",
    "BinaryArithmeticDecoder",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "FrequencyTree",
    "StaticTree",
    "golomb_rice_encode",
    "golomb_rice_decode",
    "limited_golomb_encode",
    "limited_golomb_decode",
    "AdaptiveModel",
    "AdaptiveByteModel",
]
