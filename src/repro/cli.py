"""Command-line entry points.

Six console scripts are installed (see ``pyproject.toml``); the first
four live here, ``repro-store`` in :mod:`repro.store.cli` and
``repro-serve`` in :mod:`repro.serve.cli`:

``repro-compress``
    Compress a Netpbm image — PGM grey-scale, PPM colour or PAM N-band,
    auto-detected from the magic number — or an arbitrary file with
    ``--data`` to a ``.rplc`` container using the proposed codec or any
    baseline.  Colour/multi-band inputs use the version-3 indexed
    container; ``--plane-delta`` enables the inter-plane predictor.

``repro-decompress``
    Reconstruct the original image/file from a ``.rplc`` container; the
    codec is auto-detected from the container header.  Multi-component
    streams come back as PPM (3 planes) or PAM (other plane counts; force
    PAM with a ``.pam`` output path).

``repro-inspect``
    Dump a container's header and random-access index — one row per
    (plane, stripe) cell with its row range, byte offset and length —
    without decoding any payload.  ``--json`` emits the same data
    machine-readably.

``repro-bench``
    Regenerate one or more of the paper's tables/figures from the command
    line (``table1``, ``figure4``, ``table2``, ``throughput``,
    ``ablations``, ``parallel``, ``engines``, ``components``, ``store``,
    ``catalog``, ``serve``, ``chaos`` — ``catalog`` measures metadata
    query latency at 10k entries plus bytes reclaimed by GC and
    recompaction; ``serve`` and ``chaos`` exercise the network tier:
    ``serve`` is a closed-loop load test that ``--duration S`` turns into
    a timed soak, ``chaos`` an overload + shard-stall drill with SLO
    verdicts).  With
    ``--json PATH`` a machine-readable summary (bits per pixel and MB/s per
    experiment) is written as well — the input of the CI
    performance-regression gate.  When one experiment fails the remaining
    ones still run and the partial results are still printed/written; the
    exit status is non-zero and the failing experiments are named on
    stderr.

``repro-compress``/``repro-decompress`` accept ``--cores N`` to run the
stripe-parallel codec: the image is coded as ``N`` independent stripes
(version-2 container; planes x stripes cells of a version-3 container for
colour inputs) by a pool of worker processes, mirroring the paper's
multi-core hardware option.  ``repro-bench parallel --cores N`` validates
the hardware model's predicted stripe penalty against actual striped
encodes.  ``--engine fast`` selects the vectorized coding engine (byte-
identical streams, several times faster); it composes with ``--cores``.

``repro-store``
    Content-addressed image store with cached random access; see
    :mod:`repro.store.cli`.

``repro-serve``
    The asyncio network tier over one or more stores — sharded routing,
    request coalescing, cached random access over HTTP; see
    :mod:`repro.serve.cli`.

Every console script accepts ``--version`` (read from the installed
package metadata).  Errors are reported as a single ``ExceptionName:
message`` line on stderr with a non-zero exit status; corrupt or truncated
containers surface as ``HeaderError``/``BitstreamError`` instead of a
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.baselines.calic import CalicCodec
from repro.baselines.jpegls import JpegLsCodec
from repro.baselines.slp import SlpCodec
from repro.core.bitstream import CodecId, parse_stream_header
from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.core.interface import ENGINES
from repro.exceptions import ReproError
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import read_image, write_image
from repro.system.datamodel import GeneralDataCodec

__all__ = [
    "compress_main",
    "decompress_main",
    "inspect_main",
    "bench_main",
    "package_version",
    "add_version_argument",
]


def package_version() -> str:
    """The installed package version, falling back to the source tree's.

    Console scripts read the version from package metadata so an installed
    wheel reports what pip sees; running from a source checkout (tests,
    ``PYTHONPATH=src``) falls back to ``repro.__version__``.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-chencnv07")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def add_version_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--version`` flag to a console-script parser."""
    parser.add_argument(
        "--version",
        action="version",
        version="%(prog)s " + package_version(),
    )

_IMAGE_CODECS = {
    "proposed": lambda: ProposedCodec(),
    "proposed-reference": lambda: ProposedCodec.reference(),
    "jpeg-ls": lambda: JpegLsCodec(),
    "slp": lambda: SlpCodec(),
    "calic": lambda: CalicCodec(),
}


def _print_error(error: BaseException) -> None:
    """One-line ``ExceptionName: message`` report on stderr."""
    print("%s: %s" % (type(error).__name__, error), file=sys.stderr)


def _codec_for_stream(data: bytes):
    """Instantiate the right decoder for a container, from its header."""
    header = parse_stream_header(data)
    if header.codec in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
        return None, "image"  # decode_image reconstructs its own config
    if header.codec == CodecId.JPEG_LS:
        return JpegLsCodec(), "image"
    if header.codec == CodecId.SLP:
        return SlpCodec(), "image"
    if header.codec == CodecId.CALIC:
        return CalicCodec(), "image"
    if header.codec == CodecId.GENERAL_DATA:
        return GeneralDataCodec(order=header.parameter), "data"
    raise ReproError("cannot decode streams of codec %s" % header.codec.name)


def compress_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-compress``."""
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Losslessly compress a PGM/PPM/PAM image (or raw file) "
        "into a .rplc container.",
    )
    add_version_argument(parser)
    parser.add_argument("input", help="input PGM/PPM/PAM image (or any file with --data)")
    parser.add_argument("output", help="output .rplc container")
    parser.add_argument(
        "--codec",
        choices=sorted(_IMAGE_CODECS),
        default="proposed",
        help="image codec to use (default: proposed)",
    )
    parser.add_argument(
        "--count-bits",
        type=int,
        default=14,
        help="frequency-count width of the proposed codec (default 14)",
    )
    parser.add_argument(
        "--data",
        action="store_true",
        help="treat the input as general data instead of an image",
    )
    parser.add_argument(
        "--order", type=int, default=2, help="context order for --data (default 2)"
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="encode as N independent stripes in parallel (proposed codecs only)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="coding engine for the proposed codecs; streams are byte-identical "
        "(default: reference)",
    )
    parser.add_argument(
        "--plane-delta",
        action="store_true",
        help="code plane k>0 of a colour/multi-band input as the delta to "
        "plane k-1 (proposed codecs only)",
    )
    args = parser.parse_args(argv)
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer")
    if args.cores is not None and (args.data or not args.codec.startswith("proposed")):
        parser.error("--cores is only supported with the proposed image codecs")
    if args.engine != "reference" and (args.data or not args.codec.startswith("proposed")):
        parser.error("--engine is only supported with the proposed image codecs")
    if args.plane_delta and (args.data or not args.codec.startswith("proposed")):
        parser.error("--plane-delta is only supported with the proposed image codecs")

    try:
        if args.data:
            payload = Path(args.input).read_bytes()
            stream = GeneralDataCodec(order=args.order).encode(payload)
            original_size = len(payload)
        else:
            image = read_image(args.input)
            if isinstance(image, PlanarImage) and not args.codec.startswith("proposed"):
                raise ReproError(
                    "codec %r compresses grey-scale images only; use the "
                    "proposed codec for %d-plane inputs" % (args.codec, image.num_planes)
                )
            if args.codec.startswith("proposed"):
                config = (
                    CodecConfig.hardware(
                        count_bits=args.count_bits, bit_depth=image.bit_depth
                    )
                    if args.codec == "proposed"
                    else CodecConfig.reference(
                        count_bits=args.count_bits, bit_depth=image.bit_depth
                    )
                )
                if args.cores is not None:
                    codec = ProposedCodec.parallel(
                        cores=args.cores,
                        config=config,
                        engine=args.engine,
                        plane_delta=args.plane_delta,
                    )
                else:
                    codec = ProposedCodec(
                        config, engine=args.engine, plane_delta=args.plane_delta
                    )
            else:
                codec = _IMAGE_CODECS[args.codec]()
            stream = codec.encode(image)
            sample_count = (
                image.sample_count if isinstance(image, PlanarImage) else image.pixel_count
            )
            original_size = sample_count * ((image.bit_depth + 7) // 8)
        Path(args.output).write_bytes(stream)
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1

    ratio = original_size / len(stream) if stream else 0.0
    print(
        "%s -> %s: %d -> %d bytes (ratio %.3f)"
        % (args.input, args.output, original_size, len(stream), ratio)
    )
    return 0


def decompress_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-decompress``."""
    parser = argparse.ArgumentParser(
        prog="repro-decompress",
        description="Reconstruct the original image/file from a .rplc container.",
    )
    add_version_argument(parser)
    parser.add_argument("input", help="input .rplc container")
    parser.add_argument(
        "output",
        help="output image (PGM for grey streams, PPM/PAM for multi-component "
        "streams, raw file for data streams); a .pam suffix forces PAM",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="decode striped streams with up to N worker processes",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="decoding engine for proposed-codec streams (default: reference)",
    )
    args = parser.parse_args(argv)
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer")

    try:
        stream = Path(args.input).read_bytes()
        codec, kind = _codec_for_stream(stream)
        if kind == "data":
            Path(args.output).write_bytes(codec.decode(stream))
        else:
            if codec is None:
                if args.cores is not None:
                    image = ProposedCodec.parallel(
                        cores=args.cores, engine=args.engine
                    ).decode(stream)
                else:
                    header = parse_stream_header(stream)
                    if header.component_lengths:
                        from repro.core.components import decode_planar

                        image = decode_planar(stream, engine=args.engine)
                    else:
                        from repro.core.decoder import decode_image

                        image = decode_image(stream, engine=args.engine)
            else:
                image = codec.decode(stream)
            write_image(image, args.output)
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1

    print("%s -> %s" % (args.input, args.output))
    return 0


def inspect_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-inspect``.

    Parses a container's header and stripe/component tables — no payload
    byte is ever decoded — and prints the random-access index: one row per
    (plane, stripe) cell with its row range, absolute byte offset and
    length.  Works on every container version; version-1 streams report a
    single cell.
    """
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Dump a .rplc container's header and random-access index.",
    )
    add_version_argument(parser)
    parser.add_argument("input", help="input .rplc container")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the index as JSON on stdout instead of a table",
    )
    args = parser.parse_args(argv)

    try:
        data = Path(args.input).read_bytes()
        from repro.core.components import stream_index

        index = stream_index(data)
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1

    if args.json:
        print(json.dumps(index.as_json(), indent=2, sort_keys=True))
    else:
        print(index.format_report())
    return 0


_BENCH_EXPERIMENTS = (
    "table1",
    "figure4",
    "table2",
    "throughput",
    "ablations",
    "parallel",
    "engines",
    "components",
    "store",
    "catalog",
    "serve",
    "topology",
    "chaos",
)


def _run_bench_experiment(name: str, args) -> tuple:
    """Run one ``repro-bench`` experiment.

    Returns ``(report_text, json_payload)`` where ``json_payload`` carries
    the machine-readable ``bpp`` / ``mb_per_s`` summaries (empty dicts when
    the experiment has no such numbers).
    """
    if name == "table1":
        from repro.experiments.table1 import run_table1

        size = args.size or (512 if args.full else 256)
        result = run_table1(size=size, seed=args.seed)
        text = "Table 1 (synthetic corpus, %dx%d):\n%s" % (
            size,
            size,
            result.format_table(include_paper=True),
        )
        return text, result.as_json()
    if name == "figure4":
        from repro.experiments.figure4 import run_figure4

        size = args.size or (512 if args.full else 128)
        result = run_figure4(size=size, seed=args.seed)
        text = "Figure 4 (synthetic corpus, %dx%d):\n%s" % (size, size, result.format_table())
        return text, result.as_json()
    if name == "table2":
        from repro.experiments.table2 import run_table2

        return run_table2().format_report(), {"bpp": {}, "mb_per_s": {}}
    if name == "throughput":
        from repro.experiments.throughput import run_throughput

        size = args.size or 128
        result = run_throughput(size=size)
        return result.format_report(), result.as_json()
    if name == "engines":
        from repro.experiments.engines import run_engine_comparison

        size = args.size or (512 if args.full else 96)
        result = run_engine_comparison(size=size, seed=args.seed)
        text = "Engine comparison (synthetic corpus, %dx%d):\n%s" % (
            size,
            size,
            result.format_report(),
        )
        return text, result.as_json()
    if name == "components":
        from repro.experiments.components import run_components

        size = args.size or (256 if args.full else 48)
        result = run_components(size=size, seed=args.seed)
        text = "Multi-component comparison (synthetic RGB corpus, %dx%d):\n%s" % (
            size,
            size,
            result.format_report(),
        )
        return text, result.as_json()
    if name == "store":
        from repro.experiments.store_bench import run_store_bench

        size = args.size or (96 if args.full else 48)
        result = run_store_bench(size=size, seed=args.seed)
        text = "Store serving latency (synthetic planar corpus, %dx%d):\n%s" % (
            size,
            size,
            result.format_report(),
        )
        return text, result.as_json()
    if name == "catalog":
        from repro.experiments.catalog_bench import run_catalog_bench

        size = args.size or (48 if args.full else 24)
        entries = 10_000 if args.full else 2_000
        result = run_catalog_bench(entries=entries, size=size, seed=args.seed)
        text = "Catalog query latency + lifecycle reclaim (%d entries):\n%s" % (
            entries,
            result.format_report(),
        )
        return text, result.as_json()
    if name == "topology" or (name == "serve" and args.topology == "proc"):
        from repro.experiments.serve_bench import run_topology_bench

        size = args.size or 48
        topo_result = run_topology_bench(
            size=size,
            seed=args.seed,
            workers_per_shard=args.workers_per_shard,
        )
        text = (
            "Topology scaling (thread vs %d worker process(es), %dx%d, "
            "decoded cache off):\n%s"
            % (
                topo_result.shards * topo_result.workers_per_shard,
                size,
                size,
                topo_result.format_report(),
            )
        )
        return text, topo_result.as_json()
    if name == "serve":
        from repro.experiments.serve_bench import run_serve_bench

        size = args.size or (96 if args.full else 64)
        result = run_serve_bench(size=size, seed=args.seed, duration=args.duration)
        mode = (
            "%.0fs soak" % args.duration if args.duration is not None else "closed loop"
        )
        text = "Serving-tier load test (%s, synthetic corpus, %dx%d):\n%s" % (
            mode,
            size,
            size,
            result.format_report(),
        )
        return text, result.as_json()
    if name == "chaos":
        from repro.experiments.chaos_bench import run_chaos_bench

        size = args.size or 32
        phase_seconds = args.duration if args.duration is not None else 2.0
        result = run_chaos_bench(
            size=size, seed=args.seed, phase_seconds=phase_seconds
        )
        text = (
            "Chaos drill (overload + shard stall, %.1fs phases, %dx%d):\n%s"
            % (phase_seconds, size, size, result.format_report())
        )
        return text, result.as_json()
    if name == "parallel":
        from repro.hardware.multicore import (
            estimate_scaling,
            format_validation_table,
            validate_scaling,
        )
        from repro.imaging.synthetic import generate_image

        size = args.size or (512 if args.full else 128)
        # --cores is a maximum: clamp to the image height like the codec does.
        max_cores = min(args.cores, size)
        core_counts = sorted({1, max_cores} | {2**k for k in range(1, 16) if 2**k < max_cores})
        image = generate_image("lena", size=size, seed=args.seed)
        points = estimate_scaling(size, size, core_counts)
        lines = ["Predicted multi-core scaling (%dx%d image, 123 MHz per core):" % (size, size)]
        lines.extend(point.format_row() for point in points)
        lines.append("")
        lines.append("Measured stripe penalty (parallel striped encodes, %dx%d lena):" % (size, size))
        lines.append(format_validation_table(validate_scaling(image, core_counts, parallel=True)))
        return "\n".join(lines), {"bpp": {}, "mb_per_s": {}}
    # ablations
    from repro.experiments.ablations import (
        run_division_ablation,
        run_overflow_guard_ablation,
    )

    size = args.size or 128
    overflow = run_overflow_guard_ablation(size=size, seed=args.seed)
    division = run_division_ablation(size=size, seed=args.seed)
    text = "%s\n\n%s" % (overflow.format_report(), division.format_report())
    overflow_json = overflow.as_json()
    division_json = division.as_json()
    merged = {
        "bpp": {**overflow_json["bpp"], **division_json["bpp"]},
        "mb_per_s": {},
    }
    return text, merged


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench``.

    Experiments run in the order given; a failing experiment does not stop
    the remaining ones, the partial results (stdout and ``--json``) are
    still produced, and the exit status is non-zero with the failing
    experiments named on stderr.
    """
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "experiment",
        nargs="+",
        choices=_BENCH_EXPERIMENTS,
        help="which artefact(s) to regenerate",
    )
    parser.add_argument("--size", type=int, default=None, help="corpus image size in pixels")
    parser.add_argument("--seed", type=int, default=2007, help="corpus random seed")
    parser.add_argument(
        "--full", action="store_true", help="use the paper's 512x512 geometry (slow)"
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=4,
        metavar="N",
        help="maximum core count for the parallel experiment (default 4)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="also write a machine-readable summary (bpp + MB/s per experiment)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve: run as a timed soak of this many seconds instead of a "
        "fixed request count (the nightly CI shape); chaos: seconds per "
        "load phase",
    )
    parser.add_argument(
        "--topology",
        choices=("thread", "proc"),
        default="thread",
        help="serve: 'proc' runs the topology-scaling comparison (thread vs "
        "shard worker processes, decode-bound) instead of the load test",
    )
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=2,
        metavar="W",
        help="serve --topology proc: worker processes per shard (default 2)",
    )
    args = parser.parse_args(argv)
    if args.workers_per_shard < 1:
        parser.error("--workers-per-shard must be a positive integer")
    if args.cores < 1:
        parser.error("--cores must be a positive integer")
    if args.duration is not None and args.duration <= 0:
        parser.error("--duration must be positive")

    # Dedupe while keeping the order the user asked for.
    experiments = list(dict.fromkeys(args.experiment))
    summary = {
        "schema": 1,
        "seed": args.seed,
        "size": args.size,
        "full": bool(args.full),
        "experiments": {},
    }
    failures: List[str] = []
    for index, name in enumerate(experiments):
        if index:
            print()
        try:
            text, payload = _run_bench_experiment(name, args)
        except Exception as error:  # noqa: BLE001 - isolate experiment failures
            _print_error(error)
            failures.append(name)
            summary["experiments"][name] = {
                "status": "error",
                "error": "%s: %s" % (type(error).__name__, error),
            }
            continue
        print(text)
        summary["experiments"][name] = {"status": "ok", **payload}

    # Name the failing experiments before anything else can go wrong, so the
    # report survives even an unwritable --json path.
    if failures:
        print(
            "repro-bench: %d of %d experiments failed: %s"
            % (len(failures), len(experiments), ", ".join(failures)),
            file=sys.stderr,
        )

    if args.json_path is not None:
        try:
            Path(args.json_path).write_text(
                json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError as error:
            _print_error(error)
            return 1

    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
