"""Command-line entry points.

Three console scripts are installed (see ``pyproject.toml``):

``repro-compress``
    Compress a PGM image (or an arbitrary file with ``--data``) to a
    ``.rplc`` container using the proposed codec or any baseline.

``repro-decompress``
    Reconstruct the original image/file from a ``.rplc`` container; the
    codec is auto-detected from the container header.

``repro-bench``
    Regenerate any of the paper's tables/figures from the command line
    (``table1``, ``figure4``, ``table2``, ``throughput``, ``ablations``,
    ``parallel``).

``repro-compress``/``repro-decompress`` accept ``--cores N`` to run the
stripe-parallel codec: the image is coded as ``N`` independent stripes
(version-2 container) by a pool of worker processes, mirroring the paper's
multi-core hardware option.  ``repro-bench parallel --cores N`` validates
the hardware model's predicted stripe penalty against actual striped
encodes.

Errors are reported as a single ``ExceptionName: message`` line on stderr
with a non-zero exit status; corrupt or truncated containers surface as
``HeaderError``/``BitstreamError`` instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.baselines.calic import CalicCodec
from repro.baselines.jpegls import JpegLsCodec
from repro.baselines.slp import SlpCodec
from repro.core.bitstream import CodecId, unpack_stream
from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.exceptions import ReproError
from repro.imaging.pnm import read_pgm, write_pgm
from repro.system.datamodel import GeneralDataCodec

__all__ = ["compress_main", "decompress_main", "bench_main"]

_IMAGE_CODECS = {
    "proposed": lambda: ProposedCodec(),
    "proposed-reference": lambda: ProposedCodec.reference(),
    "jpeg-ls": lambda: JpegLsCodec(),
    "slp": lambda: SlpCodec(),
    "calic": lambda: CalicCodec(),
}


def _print_error(error: BaseException) -> None:
    """One-line ``ExceptionName: message`` report on stderr."""
    print("%s: %s" % (type(error).__name__, error), file=sys.stderr)


def _codec_for_stream(data: bytes):
    """Instantiate the right decoder for a container, from its header."""
    header, _ = unpack_stream(data)
    if header.codec in (CodecId.PROPOSED, CodecId.PROPOSED_HARDWARE):
        return None, "image"  # decode_image reconstructs its own config
    if header.codec == CodecId.JPEG_LS:
        return JpegLsCodec(), "image"
    if header.codec == CodecId.SLP:
        return SlpCodec(), "image"
    if header.codec == CodecId.CALIC:
        return CalicCodec(), "image"
    if header.codec == CodecId.GENERAL_DATA:
        return GeneralDataCodec(order=header.parameter), "data"
    raise ReproError("cannot decode streams of codec %s" % header.codec.name)


def compress_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-compress``."""
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Losslessly compress a PGM image (or raw file) into a .rplc container.",
    )
    parser.add_argument("input", help="input PGM image (or any file with --data)")
    parser.add_argument("output", help="output .rplc container")
    parser.add_argument(
        "--codec",
        choices=sorted(_IMAGE_CODECS),
        default="proposed",
        help="image codec to use (default: proposed)",
    )
    parser.add_argument(
        "--count-bits",
        type=int,
        default=14,
        help="frequency-count width of the proposed codec (default 14)",
    )
    parser.add_argument(
        "--data",
        action="store_true",
        help="treat the input as general data instead of an image",
    )
    parser.add_argument(
        "--order", type=int, default=2, help="context order for --data (default 2)"
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="encode as N independent stripes in parallel (proposed codecs only)",
    )
    args = parser.parse_args(argv)
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer")
    if args.cores is not None and (args.data or not args.codec.startswith("proposed")):
        parser.error("--cores is only supported with the proposed image codecs")

    try:
        if args.data:
            payload = Path(args.input).read_bytes()
            stream = GeneralDataCodec(order=args.order).encode(payload)
            original_size = len(payload)
        else:
            image = read_pgm(args.input)
            if args.codec.startswith("proposed"):
                config = (
                    CodecConfig.hardware(count_bits=args.count_bits)
                    if args.codec == "proposed"
                    else CodecConfig.reference(count_bits=args.count_bits)
                )
                if args.cores is not None:
                    codec = ProposedCodec.parallel(cores=args.cores, config=config)
                else:
                    codec = ProposedCodec(config)
            else:
                codec = _IMAGE_CODECS[args.codec]()
            stream = codec.encode(image)
            original_size = image.pixel_count * ((image.bit_depth + 7) // 8)
        Path(args.output).write_bytes(stream)
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1

    ratio = original_size / len(stream) if stream else 0.0
    print(
        "%s -> %s: %d -> %d bytes (ratio %.3f)"
        % (args.input, args.output, original_size, len(stream), ratio)
    )
    return 0


def decompress_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-decompress``."""
    parser = argparse.ArgumentParser(
        prog="repro-decompress",
        description="Reconstruct the original image/file from a .rplc container.",
    )
    parser.add_argument("input", help="input .rplc container")
    parser.add_argument("output", help="output PGM image (or raw file for data streams)")
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="decode striped streams with up to N worker processes",
    )
    args = parser.parse_args(argv)
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer")

    try:
        stream = Path(args.input).read_bytes()
        codec, kind = _codec_for_stream(stream)
        if kind == "data":
            Path(args.output).write_bytes(codec.decode(stream))
        else:
            if codec is None:
                if args.cores is not None:
                    image = ProposedCodec.parallel(cores=args.cores).decode(stream)
                else:
                    from repro.core.decoder import decode_image

                    image = decode_image(stream)
            else:
                image = codec.decode(stream)
            write_pgm(image, args.output)
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1

    print("%s -> %s" % (args.input, args.output))
    return 0


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "figure4", "table2", "throughput", "ablations", "parallel"],
        help="which artefact to regenerate",
    )
    parser.add_argument("--size", type=int, default=None, help="corpus image size in pixels")
    parser.add_argument("--seed", type=int, default=2007, help="corpus random seed")
    parser.add_argument(
        "--full", action="store_true", help="use the paper's 512x512 geometry (slow)"
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=4,
        metavar="N",
        help="maximum core count for the parallel experiment (default 4)",
    )
    args = parser.parse_args(argv)
    if args.cores < 1:
        parser.error("--cores must be a positive integer")

    try:
        if args.experiment == "table1":
            from repro.experiments.table1 import run_table1

            size = args.size or (512 if args.full else 256)
            result = run_table1(size=size, seed=args.seed)
            print("Table 1 (synthetic corpus, %dx%d):" % (size, size))
            print(result.format_table(include_paper=True))
        elif args.experiment == "figure4":
            from repro.experiments.figure4 import run_figure4

            size = args.size or (512 if args.full else 128)
            result = run_figure4(size=size, seed=args.seed)
            print("Figure 4 (synthetic corpus, %dx%d):" % (size, size))
            print(result.format_table())
        elif args.experiment == "table2":
            from repro.experiments.table2 import run_table2

            print(run_table2().format_report())
        elif args.experiment == "throughput":
            from repro.experiments.throughput import run_throughput

            size = args.size or 128
            print(run_throughput(size=size).format_report())
        elif args.experiment == "parallel":
            from repro.hardware.multicore import (
                estimate_scaling,
                format_validation_table,
                validate_scaling,
            )
            from repro.imaging.synthetic import generate_image

            size = args.size or (512 if args.full else 128)
            # --cores is a maximum: clamp to the image height like the codec does.
            max_cores = min(args.cores, size)
            core_counts = sorted({1, max_cores} | {2**k for k in range(1, 16) if 2**k < max_cores})
            image = generate_image("lena", size=size, seed=args.seed)
            points = estimate_scaling(size, size, core_counts)
            print("Predicted multi-core scaling (%dx%d image, 123 MHz per core):" % (size, size))
            for point in points:
                print(point.format_row())
            print()
            print("Measured stripe penalty (parallel striped encodes, %dx%d lena):" % (size, size))
            print(format_validation_table(validate_scaling(image, core_counts, parallel=True)))
        else:
            from repro.experiments.ablations import (
                run_division_ablation,
                run_overflow_guard_ablation,
            )

            size = args.size or 128
            print(run_overflow_guard_ablation(size=size, seed=args.seed).format_report())
            print()
            print(run_division_ablation(size=size, seed=args.seed).format_report())
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
