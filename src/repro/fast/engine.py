"""Tightened serial entropy back-end of the fast engine.

The fast engine restructures the per-pixel loop of the reference codec into
two phases:

1. the **row-vectorized modelling front-end** (:mod:`repro.fast.rowmodel`)
   computes prediction, texture pattern and gradient energy for the whole
   image as NumPy array passes — everything with no serial feedback;
2. this module's **serial back-end** walks the pixels once, resolving only
   the feedback-coupled quantities (error-energy quantisation with the
   previous error, per-context bias feedback, probability-tree adaptation)
   and drives a fully inlined binary arithmetic coder: local-variable-bound
   register arithmetic, precomputed tree path tables
   (:func:`repro.entropy.freqtree.symbol_path_table`), the shared
   reciprocal-division ROM (:class:`repro.core.tables.ModelingTables`) and
   batched byte-level bit I/O.

Every arithmetic step replicates the reference implementation exactly —
same register geometry, same split computation, same renormalisation, same
adaptation order — so the produced stream is **byte-identical** to
:func:`repro.core.encoder.encode_payload` and the decoder accepts streams
from either engine.  ``tests/fast/`` sweeps corpora, bit depths and
degenerate geometries to enforce that identity.

The decoder cannot vectorize its modelling front-end (the causal neighbours
only exist once earlier pixels are decoded), so :func:`decode_payload_fast`
is "only" a fully inlined scalar loop — still several times faster than the
layered reference decoder.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.core.tables import ModelingTables
from repro.entropy.freqtree import FrequencyTree, StaticTree, symbol_path_table
from repro.exceptions import BitstreamError, ModelStateError
from repro.fast.rowmodel import model_image
from repro.imaging.image import GrayImage

__all__ = ["encode_payload_fast", "decode_payload_fast"]


def _make_trees(config: CodecConfig) -> List[FrequencyTree]:
    """One dynamic tree per coding context, identical to the estimator's."""
    return [
        FrequencyTree(
            alphabet_size=config.alphabet_size,
            count_bits=config.count_bits,
            with_escape=True,
            increment=config.estimator_increment,
        )
        for _ in range(config.energy_levels)
    ]


def encode_payload_fast(image: GrayImage, config: CodecConfig) -> tuple:
    """Fast-engine equivalent of :func:`repro.core.encoder.encode_payload`.

    Returns ``(payload, statistics)`` with a byte-identical payload and the
    same :class:`~repro.core.encoder.EncodeStatistics` counters the
    reference engine reports.
    """
    width = image.width
    height = image.height
    px = np.asarray(image.pixels(), dtype=np.int64).reshape(height, width)
    # Same loud failure as the reference engine's map_error when the image
    # range exceeds the configured bit depth (e.g. encode_payload called
    # directly with a mismatched config): wrapping silently would produce a
    # lossy stream.
    if px.size and (px.max() > config.max_sample or px.min() < 0):
        out_of_range = px[(px > config.max_sample) | (px < 0)]
        raise ModelStateError(
            "pixel value %d outside [0, %d]" % (int(out_of_range.flat[0]), config.max_sample)
        )
    model = model_image(px, config)
    # Whole-image conversions: list indexing in the serial loop is far
    # cheaper than per-element NumPy scalar access.
    value_rows = px.tolist()
    pred_rows = model.predicted.tolist()
    texture_rows = model.texture.tolist()
    gradient_rows = model.gradient.tolist()

    tables = ModelingTables(config)
    energy_lut = tables.energy_lut
    energy_lut_limit = tables.energy_lut_limit
    top_level = config.energy_levels - 1
    levels = config.energy_levels
    rom = tables.reciprocal_rom
    rom_shift = tables.reciprocal_shift
    rom_rounding = tables.reciprocal_rounding
    dividend_max = tables.dividend_max
    sum_max = tables.sum_max
    bias_count_max = tables.count_max
    aging = config.use_overflow_guard_aging
    use_feedback = config.use_error_feedback

    trees = _make_trees(config)
    tree_counts = [tree.counts for tree in trees]
    depth = trees[0].depth
    num_leaves = trees[0].num_leaves
    paths = symbol_path_table(depth)
    increment = config.estimator_increment
    max_count = trees[0].max_count
    alphabet = config.alphabet_size
    static_depth = StaticTree(alphabet).depth

    bias_sums = [0] * config.compound_contexts
    bias_counts = [0] * config.compound_contexts

    maxv = config.max_sample
    size = 1 << config.bit_depth
    mask = size - 1
    half = size >> 1

    # Arithmetic-coder registers (same geometry as BinaryArithmeticEncoder).
    precision = config.coder_precision
    top = (1 << precision) - 1
    reg_half = 1 << (precision - 1)
    reg_quarter = 1 << (precision - 2)
    reg_three_quarters = reg_half + reg_quarter
    low = 0
    high = top
    pending = 0

    out = bytearray()
    bitbuf = 0
    nbits = 0

    escapes = 0
    tree_rescales = 0
    binary_decisions = 0
    bias_saturations = 0
    symbols_per_context = [0] * levels

    for y in range(height):
        value_row = value_rows[y]
        pred_row = pred_rows[y]
        texture_row = texture_rows[y]
        gradient_row = gradient_rows[y]
        twice_prev = 0  # 2 * |previous wrapped error|; reset per row

        for x in range(width):
            # --- serial modelling tail: QE, compound context, feedback --- #
            energy = gradient_row[x] + twice_prev
            q = energy_lut[energy] if energy <= energy_lut_limit else top_level
            compound = texture_row[x] * levels + q
            predicted = pred_row[x]
            count = bias_counts[compound]
            if count and use_feedback:
                total = bias_sums[compound]
                if total > dividend_max:
                    total = dividend_max
                elif total < -dividend_max:
                    total = -dividend_max
                if rom is not None:
                    if total < 0:
                        mean = -((-total * rom[count] + rom_rounding) >> rom_shift)
                    else:
                        mean = (total * rom[count] + rom_rounding) >> rom_shift
                else:
                    if total < 0:
                        mean = -((-total + count // 2) // count)
                    else:
                        mean = (total + count // 2) // count
                adjusted = predicted + mean
                if adjusted < 0:
                    adjusted = 0
                elif adjusted > maxv:
                    adjusted = maxv
            else:
                adjusted = predicted

            # --- error mapping (modulo reduction + interleaved fold) ----- #
            error = (value_row[x] - adjusted) & mask
            if error >= half:
                error -= size
            symbol = error + error if error >= 0 else -error - error - 1

            # --- entropy coding: inlined tree walk + arithmetic coder ---- #
            counts = tree_counts[q]
            escaped = counts[num_leaves + symbol] <= 0
            for node, direction in paths[alphabet] if escaped else paths[symbol]:
                left = counts[node + node]
                span = high - low + 1
                split = low + (span * left) // counts[node] - 1
                if direction == 0:
                    high = split
                else:
                    low = split + 1
                while True:
                    if high < reg_half:
                        nbits += 1 + pending
                        bitbuf = (bitbuf << (1 + pending)) | ((1 << pending) - 1)
                        pending = 0
                        if nbits >= 8:
                            while nbits >= 8:
                                nbits -= 8
                                out.append((bitbuf >> nbits) & 0xFF)
                            bitbuf &= (1 << nbits) - 1
                    elif low >= reg_half:
                        nbits += 1 + pending
                        bitbuf = ((bitbuf << 1) | 1) << pending
                        pending = 0
                        if nbits >= 8:
                            while nbits >= 8:
                                nbits -= 8
                                out.append((bitbuf >> nbits) & 0xFF)
                            bitbuf &= (1 << nbits) - 1
                        low -= reg_half
                        high -= reg_half
                    elif low >= reg_quarter and high < reg_three_quarters:
                        pending += 1
                        low -= reg_quarter
                        high -= reg_quarter
                    else:
                        break
                    low <<= 1
                    high = (high << 1) | 1
            binary_decisions += depth
            if escaped:
                # Escape: the raw symbol goes through the uniform static
                # tree (probability one half per level).
                escapes += 1
                binary_decisions += static_depth
                for level in range(static_depth - 1, -1, -1):
                    span = high - low + 1
                    split = low + (span >> 1) - 1
                    if (symbol >> level) & 1:
                        low = split + 1
                    else:
                        high = split
                    while True:
                        if high < reg_half:
                            nbits += 1 + pending
                            bitbuf = (bitbuf << (1 + pending)) | ((1 << pending) - 1)
                            pending = 0
                            if nbits >= 8:
                                while nbits >= 8:
                                    nbits -= 8
                                    out.append((bitbuf >> nbits) & 0xFF)
                                bitbuf &= (1 << nbits) - 1
                        elif low >= reg_half:
                            nbits += 1 + pending
                            bitbuf = ((bitbuf << 1) | 1) << pending
                            pending = 0
                            if nbits >= 8:
                                while nbits >= 8:
                                    nbits -= 8
                                    out.append((bitbuf >> nbits) & 0xFF)
                                bitbuf &= (1 << nbits) - 1
                            low -= reg_half
                            high -= reg_half
                        elif low >= reg_quarter and high < reg_three_quarters:
                            pending += 1
                            low -= reg_quarter
                            high -= reg_quarter
                        else:
                            break
                        low <<= 1
                        high = (high << 1) | 1

            # --- probability-estimator adaptation (inlined tree update) -- #
            leaf = num_leaves + symbol
            if counts[leaf] + increment > max_count:
                trees[q].rescale()
                tree_rescales += 1
            counts[leaf] += increment
            node = leaf >> 1
            while node:
                counts[node] += increment
                node >>= 1
            symbols_per_context[q] += 1

            # --- bias-corrector adaptation (Overflow Guard) -------------- #
            count = bias_counts[compound]
            if count < bias_count_max or aging:
                total = bias_sums[compound]
                if count >= bias_count_max:
                    count >>= 1
                    total = -((-total) >> 1) if total < 0 else total >> 1
                count += 1
                total += error
                if total > sum_max:
                    total = sum_max
                elif total < -sum_max:
                    total = -sum_max
                bias_counts[compound] = count
                bias_sums[compound] = total
                if count == bias_count_max:
                    bias_saturations += 1

            twice_prev = error + error if error >= 0 else -error - error

    # Coder termination: one extra pending bit, then one disambiguating bit
    # (0 selects the lower quarter, 1 the upper) with its pending complement.
    pending += 1
    if low < reg_quarter:
        nbits += 1 + pending
        bitbuf = (bitbuf << (1 + pending)) | ((1 << pending) - 1)
    else:
        nbits += 1 + pending
        bitbuf = ((bitbuf << 1) | 1) << pending
    while nbits >= 8:
        nbits -= 8
        out.append((bitbuf >> nbits) & 0xFF)
    bitbuf &= (1 << nbits) - 1
    if nbits:
        out.append((bitbuf << (8 - nbits)) & 0xFF)

    payload = bytes(out)
    statistics = EncodeStatistics(
        payload_bytes=len(payload),
        escapes=escapes,
        tree_rescales=tree_rescales,
        binary_decisions=binary_decisions,
        context_usage={
            context: used for context, used in enumerate(symbols_per_context) if used
        },
        bias_saturations=bias_saturations,
    )
    return payload, statistics


def decode_payload_fast(
    payload: bytes, width: int, height: int, config: CodecConfig, _debug=None
) -> List[int]:
    """Fast-engine equivalent of :func:`repro.core.decoder.decode_payload`.

    The modelling front-end cannot be vectorized on the decode side (the
    causal window only fills as pixels are reconstructed), so this is a
    fully inlined scalar loop sharing the same tables as the encoder.

    ``_debug``, when given, is called after every pixel with
    ``(pixel_index, q, symbol, value, low, high, code)`` — a lock-step
    tracing hook for diagnosing any divergence from the reference decoder.
    """
    if width <= 0:
        raise ModelStateError("window width must be positive, got %d" % width)

    tables = ModelingTables(config)
    energy_lut = tables.energy_lut
    energy_lut_limit = tables.energy_lut_limit
    top_level = config.energy_levels - 1
    levels = config.energy_levels
    rom = tables.reciprocal_rom
    rom_shift = tables.reciprocal_shift
    rom_rounding = tables.reciprocal_rounding
    dividend_max = tables.dividend_max
    sum_max = tables.sum_max
    bias_count_max = tables.count_max
    aging = config.use_overflow_guard_aging
    use_feedback = config.use_error_feedback

    trees = _make_trees(config)
    tree_counts = [tree.counts for tree in trees]
    depth = trees[0].depth
    num_leaves = trees[0].num_leaves
    increment = config.estimator_increment
    max_count = trees[0].max_count
    alphabet = config.alphabet_size
    escape_index = alphabet
    static_depth = StaticTree(alphabet).depth

    bias_sums = [0] * config.compound_contexts
    bias_counts = [0] * config.compound_contexts

    maxv = config.max_sample
    size = 1 << config.bit_depth
    mask = size - 1
    half = size >> 1
    default = (maxv + 1) // 2
    sharp = config.gap_sharp_threshold
    strong = config.gap_strong_threshold
    weak = config.gap_weak_threshold
    texture_mask = (1 << config.texture_bits) - 1

    # Bounded bit input (mirrors BitReader with max_phantom_bits).
    data = bytes(payload)
    data_len = len(data)
    byte_pos = 0
    bit_pos = 0
    phantom = 0
    max_phantom = 4 * config.coder_precision

    precision = config.coder_precision
    top = (1 << precision) - 1
    reg_half = 1 << (precision - 1)
    reg_quarter = 1 << (precision - 2)
    reg_three_quarters = reg_half + reg_quarter
    low = 0
    high = top
    code = 0
    for _ in range(precision):
        if byte_pos < data_len:
            bit = (data[byte_pos] >> (7 - bit_pos)) & 1
            bit_pos += 1
            if bit_pos == 8:
                bit_pos = 0
                byte_pos += 1
        else:
            phantom += 1
            if phantom > max_phantom:
                raise BitstreamError(
                    "read %d bits past the end of a %d-byte bitstream; "
                    "the stream is truncated or corrupt" % (phantom, data_len)
                )
            bit = 0
        code = (code << 1) | bit

    pixels: List[int] = []
    above1: Optional[List[int]] = None
    above2: Optional[List[int]] = None

    for _y in range(height):
        current: List[int] = []
        twice_prev = 0
        for x in range(width):
            # --- causal neighbourhood (three-row window, inlined) -------- #
            if x >= 1:
                w = current[x - 1]
            elif above1 is not None:
                w = above1[0]
            else:
                w = default
            ww = current[x - 2] if x >= 2 else w
            if above1 is not None:
                n = above1[x]
                nw = above1[x - 1] if x >= 1 else n
                ne = above1[x + 1] if x + 1 < width else n
            else:
                n = w
                nw = w
                ne = w
            if above2 is not None:
                nn = above2[x]
                nne = above2[x + 1] if x + 1 < width else nn
            else:
                nn = n
                nne = ne

            # --- GAP prediction (inlined scalar cascade) ----------------- #
            dh = abs(w - ww) + abs(n - nw) + abs(n - ne)
            dv = abs(w - nw) + abs(n - nn) + abs(ne - nne)
            diff = dv - dh
            if diff > sharp:
                predicted = w
            elif -diff > sharp:
                predicted = n
            else:
                predicted = ((w + n) >> 1) + ((ne - nw) >> 2)
                if diff > strong:
                    predicted = (predicted + w) >> 1
                elif diff > weak:
                    predicted = (3 * predicted + w) >> 2
                elif -diff > strong:
                    predicted = (predicted + n) >> 1
                elif -diff > weak:
                    predicted = (3 * predicted + n) >> 2
            if predicted < 0:
                predicted = 0
            elif predicted > maxv:
                predicted = maxv

            # --- texture pattern + coding context ------------------------ #
            texture = (
                (1 if n < predicted else 0)
                | (2 if w < predicted else 0)
                | (4 if nw < predicted else 0)
                | (8 if ne < predicted else 0)
                | (16 if nn < predicted else 0)
                | (32 if ww < predicted else 0)
            ) & texture_mask
            energy = dh + dv + twice_prev
            q = energy_lut[energy] if energy <= energy_lut_limit else top_level
            compound = texture * levels + q

            # --- error feedback ------------------------------------------ #
            count = bias_counts[compound]
            if count and use_feedback:
                total = bias_sums[compound]
                if total > dividend_max:
                    total = dividend_max
                elif total < -dividend_max:
                    total = -dividend_max
                if rom is not None:
                    if total < 0:
                        mean = -((-total * rom[count] + rom_rounding) >> rom_shift)
                    else:
                        mean = (total * rom[count] + rom_rounding) >> rom_shift
                else:
                    if total < 0:
                        mean = -((-total + count // 2) // count)
                    else:
                        mean = (total + count // 2) // count
                adjusted = predicted + mean
                if adjusted < 0:
                    adjusted = 0
                elif adjusted > maxv:
                    adjusted = maxv
            else:
                adjusted = predicted

            # --- entropy decoding: inlined tree walk + coder ------------- #
            counts = tree_counts[q]
            symbol = 0
            node = 1
            for _level in range(depth):
                left = counts[node + node]
                span = high - low + 1
                split = low + (span * left) // counts[node] - 1
                if code <= split:
                    if left <= 0:
                        raise BitstreamError(
                            "decoded a decision the model deems impossible"
                        )
                    bit = 0
                    high = split
                else:
                    if left >= counts[node]:
                        raise BitstreamError(
                            "decoded a decision the model deems impossible"
                        )
                    bit = 1
                    low = split + 1
                while True:
                    if high < reg_half:
                        pass
                    elif low >= reg_half:
                        low -= reg_half
                        high -= reg_half
                        code -= reg_half
                    elif low >= reg_quarter and high < reg_three_quarters:
                        low -= reg_quarter
                        high -= reg_quarter
                        code -= reg_quarter
                    else:
                        break
                    low <<= 1
                    high = (high << 1) | 1
                    if byte_pos < data_len:
                        in_bit = (data[byte_pos] >> (7 - bit_pos)) & 1
                        bit_pos += 1
                        if bit_pos == 8:
                            bit_pos = 0
                            byte_pos += 1
                    else:
                        phantom += 1
                        if phantom > max_phantom:
                            raise BitstreamError(
                                "read %d bits past the end of a %d-byte bitstream; "
                                "the stream is truncated or corrupt"
                                % (phantom, data_len)
                            )
                        in_bit = 0
                    code = (code << 1) | in_bit
                symbol = (symbol << 1) | bit
                node = node + node + bit

            if symbol == escape_index:
                # Escaped symbol: read it from the uniform static tree.
                symbol = 0
                for _level in range(static_depth):
                    span = high - low + 1
                    split = low + (span >> 1) - 1
                    if code <= split:
                        bit = 0
                        high = split
                    else:
                        bit = 1
                        low = split + 1
                    while True:
                        if high < reg_half:
                            pass
                        elif low >= reg_half:
                            low -= reg_half
                            high -= reg_half
                            code -= reg_half
                        elif low >= reg_quarter and high < reg_three_quarters:
                            low -= reg_quarter
                            high -= reg_quarter
                            code -= reg_quarter
                        else:
                            break
                        low <<= 1
                        high = (high << 1) | 1
                        if byte_pos < data_len:
                            in_bit = (data[byte_pos] >> (7 - bit_pos)) & 1
                            bit_pos += 1
                            if bit_pos == 8:
                                bit_pos = 0
                                byte_pos += 1
                        else:
                            phantom += 1
                            if phantom > max_phantom:
                                raise BitstreamError(
                                    "read %d bits past the end of a %d-byte "
                                    "bitstream; the stream is truncated or corrupt"
                                    % (phantom, data_len)
                                )
                            in_bit = 0
                        code = (code << 1) | in_bit
                    symbol = (symbol << 1) | bit
                if symbol >= alphabet:
                    raise ModelStateError(
                        "static tree decoded %d outside alphabet of %d"
                        % (symbol, alphabet)
                    )
            elif symbol >= alphabet:
                raise ModelStateError(
                    "decoded padding leaf %d; bitstream is corrupt" % symbol
                )

            # --- probability-estimator adaptation ------------------------ #
            leaf = num_leaves + symbol
            if counts[leaf] + increment > max_count:
                trees[q].rescale()
            counts[leaf] += increment
            node = leaf >> 1
            while node:
                counts[node] += increment
                node >>= 1

            # --- error unmapping + model commit -------------------------- #
            error = symbol >> 1 if symbol % 2 == 0 else -(symbol + 1) >> 1
            value = (adjusted + error) & mask

            count = bias_counts[compound]
            if count < bias_count_max or aging:
                total = bias_sums[compound]
                if count >= bias_count_max:
                    count >>= 1
                    total = -((-total) >> 1) if total < 0 else total >> 1
                count += 1
                total += error
                if total > sum_max:
                    total = sum_max
                elif total < -sum_max:
                    total = -sum_max
                bias_counts[compound] = count
                bias_sums[compound] = total

            twice_prev = error + error if error >= 0 else -error - error
            current.append(value)
            pixels.append(value)
            if _debug is not None:
                _debug(len(pixels) - 1, q, symbol, value, low, high, code)

        above2 = above1
        above1 = current

    return pixels
