"""Registry backend of the fast coding engine.

Wraps the functional entry points of :mod:`repro.fast.engine` in the
:class:`~repro.core.interface.EngineBackend` protocol and registers them as
``engine="fast"``.  Importing this module registers the engine;
:func:`repro.core.interface.get_engine` does so lazily on first lookup, so
processes that never select the fast engine never import its numpy-heavy
modelling front-end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.core.config import CodecConfig
from repro.core.interface import EngineBackend, register_engine
from repro.fast.engine import decode_payload_fast, encode_payload_fast
from repro.imaging.image import GrayImage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.encoder import EncodeStatistics

__all__ = ["FastEngine"]


class FastEngine(EngineBackend):
    """Row-vectorized modelling + inlined entropy coding; byte-identical."""

    name = "fast"

    def encode_payload(
        self, image: GrayImage, config: CodecConfig
    ) -> Tuple[bytes, "EncodeStatistics"]:
        return encode_payload_fast(image, config)

    def decode_payload(
        self, payload: bytes, width: int, height: int, config: CodecConfig
    ) -> List[int]:
        return decode_payload_fast(payload, width, height, config)


register_engine(FastEngine())
