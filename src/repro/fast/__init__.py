"""The fast coding engine: vectorized modelling + tightened serial coding.

This package is the second of the codec's two interchangeable engines:

* ``engine="reference"`` — the per-pixel pipeline of :mod:`repro.core`,
  structured exactly like the paper's Figure 3 (one block per module);
* ``engine="fast"`` — this package: a row-vectorized NumPy modelling
  front-end (:mod:`repro.fast.rowmodel`) feeding a fully inlined serial
  entropy back-end (:mod:`repro.fast.engine`).

Both engines produce **byte-identical** bitstreams — the fast engine is a
reimplementation of the same arithmetic, not an approximation — so streams
are freely interchangeable and ``engine`` is purely a speed knob.  Select it
through :class:`repro.ProposedCodec`, :class:`repro.ParallelCodec` or the
CLI's ``--engine`` flag.

Multi-component (planar) payloads compose with the engine transparently:
:mod:`repro.core.components` runs a plane loop over the same per-payload
entry points (one vectorized ``model_image`` pass per plane/stripe cell),
so colour and N-band streams inherit the fast engine's speedup — and its
byte identity — without any engine-side changes.
"""

from repro.fast.engine import decode_payload_fast, encode_payload_fast
from repro.fast.rowmodel import RowModel, model_image

__all__ = [
    "encode_payload_fast",
    "decode_payload_fast",
    "model_image",
    "RowModel",
]
