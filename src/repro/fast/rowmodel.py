"""Row-vectorized modelling front-end of the fast engine.

The encoder knows every pixel value up front, so all modelling quantities
with **no serial feedback** can be computed for the whole image as NumPy
array passes instead of per-pixel Python calls:

* the seven causal neighbours (Figure 2) — pure shifts of the pixel array,
  with the boundary policy of :class:`~repro.core.neighborhood.ThreeRowWindow`
  reproduced exactly (mid-grey before the first pixel, west fallback on the
  first row, nearest-causal fallback at the first/last column);
* the gradient magnitudes ``dh``/``dv`` and the GAP prediction of
  :class:`~repro.core.predictor.GradientAdjustedPredictor` (the threshold
  cascade becomes one :func:`numpy.select`);
* the 6-bit texture pattern of :class:`~repro.core.context.ContextModeler`
  (six vectorized comparisons against the prediction).

What stays out of this module is exactly the serial feedback path: the
error-energy term ``2*|e_W|`` (depends on the previous pixel's coded error),
the per-context bias feedback and the entropy coding — those run in the
tightened serial back-end of :mod:`repro.fast.engine`.

Lossless coding guarantees the decoder reconstructs the same pixel values
the encoder saw, so arrays computed here from the *actual* pixels are
bit-for-bit the values the reference engine derives from its rotating
three-row window; ``tests/fast/test_rowmodel.py`` asserts that equivalence
pixel by pixel.

All arrays use ``int64`` so the shift/compare arithmetic matches Python's
unbounded integers (NumPy's arithmetic right shift floors exactly like
Python's ``>>``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CodecConfig

__all__ = ["RowModel", "model_image"]


@dataclass(frozen=True)
class RowModel:
    """Vectorized modelling arrays for a whole image (all shaped height x width)."""

    #: Clamped GAP prediction X̂ of every pixel.
    predicted: np.ndarray
    #: 6-bit texture pattern of every pixel.
    texture: np.ndarray
    #: Gradient part of the error energy (dh + dv); the serial back-end adds
    #: the ``2*|e_W|`` feedback term before quantising.
    gradient: np.ndarray
    #: Horizontal / vertical gradient magnitudes (exposed for parity tests).
    dh: np.ndarray
    dv: np.ndarray
    #: The seven causal neighbour planes (exposed for parity tests).
    w: np.ndarray
    ww: np.ndarray
    n: np.ndarray
    nn: np.ndarray
    ne: np.ndarray
    nw: np.ndarray
    nne: np.ndarray


def _causal_planes(px: np.ndarray, default: int):
    """Shift the pixel plane into the seven causal neighbour planes."""
    w = np.empty_like(px)
    w[:, 1:] = px[:, :-1]
    w[1:, 0] = px[:-1, 0]  # first column: W falls back to above1[0]
    w[0, 0] = default      # very first pixel: mid-grey

    ww = np.empty_like(px)
    ww[:, 2:] = px[:, :-2]
    ww[:, : min(2, px.shape[1])] = w[:, : min(2, px.shape[1])]

    n = np.empty_like(px)
    n[1:, :] = px[:-1, :]
    n[0, :] = w[0, :]  # first row: north neighbours fall back to W

    nw = np.empty_like(px)
    nw[1:, 1:] = px[:-1, :-1]
    nw[1:, 0] = n[1:, 0]
    nw[0, :] = w[0, :]

    ne = np.empty_like(px)
    ne[1:, : px.shape[1] - 1] = px[:-1, 1:]
    ne[1:, -1] = n[1:, -1]
    ne[0, :] = w[0, :]

    first_two = min(2, px.shape[0])
    nn = np.empty_like(px)
    nn[2:, :] = px[:-2, :]
    nn[:first_two, :] = n[:first_two, :]  # rows 0/1: NN falls back to N

    nne = np.empty_like(px)
    nne[2:, : px.shape[1] - 1] = px[:-2, 1:]
    nne[2:, -1] = nn[2:, -1]
    nne[:first_two, :] = ne[:first_two, :]

    return w, ww, n, nn, ne, nw, nne


def model_image(px: np.ndarray, config: CodecConfig) -> RowModel:
    """Compute the feedback-free modelling arrays for a whole image.

    Parameters
    ----------
    px:
        2-D ``int64`` array of the pixel values (one stripe or whole image).
    config:
        The codec configuration; supplies the GAP thresholds, the sample
        range and the texture-pattern width.
    """
    px = np.ascontiguousarray(px, dtype=np.int64)
    default = (config.max_sample + 1) // 2
    w, ww, n, nn, ne, nw, nne = _causal_planes(px, default)

    dh = np.abs(w - ww) + np.abs(n - nw) + np.abs(n - ne)
    dv = np.abs(w - nw) + np.abs(n - nn) + np.abs(ne - nne)
    diff = dv - dh

    sharp = config.gap_sharp_threshold
    strong = config.gap_strong_threshold
    weak = config.gap_weak_threshold

    base = ((w + n) >> 1) + ((ne - nw) >> 2)
    # The conditions mirror the if/elif cascade of the scalar predictor;
    # np.select takes the first matching branch, like if/elif does.
    predicted = np.select(
        [
            diff > sharp,        # sharp horizontal edge -> W
            -diff > sharp,       # sharp vertical edge -> N
            diff > strong,
            diff > weak,
            -diff > strong,
            -diff > weak,
        ],
        [
            w,
            n,
            (base + w) >> 1,
            (3 * base + w) >> 2,
            (base + n) >> 1,
            (3 * base + n) >> 2,
        ],
        default=base,
    )
    np.clip(predicted, 0, config.max_sample, out=predicted)

    texture = (
        (n < predicted) * 0b000001
        + (w < predicted) * 0b000010
        + (nw < predicted) * 0b000100
        + (ne < predicted) * 0b001000
        + (nn < predicted) * 0b010000
        + (ww < predicted) * 0b100000
    ) & ((1 << config.texture_bits) - 1)

    return RowModel(
        predicted=predicted,
        texture=texture,
        gradient=dh + dv,
        dh=dh,
        dv=dv,
        w=w,
        ww=ww,
        n=n,
        nn=nn,
        ne=ne,
        nw=nw,
        nne=nne,
    )
