"""Stripe-parallel encode/decode facade.

:class:`ParallelCodec` is the software realisation of the paper's closing
remark that "the low complexity means that a multi-core solution could be
used to scale up the performance": the image is partitioned into horizontal
stripes, every stripe is coded by an independent instance of the full
pipeline (its own modelling front-end, probability estimator and arithmetic
coder — exactly what hardware replication gives), and the per-stripe
payloads are assembled into a version-2 container whose stripe table lets
the decoder fan the stripes back out over a pool of processes.

Because the stripes are independent and the partition is deterministic, the
encoded stream is byte-identical whether the stripes are coded serially or
in parallel; core count changes the stream only through the *number* of
stripes (more stripes = more cold adaptive models = slightly worse
compression, the same trade-off the hardware model in
:mod:`repro.hardware.multicore` predicts).

Multi-component images compose with striping: a
:class:`~repro.imaging.planar.PlanarImage` input fans ``planes x stripes``
independent cell tasks over the same pool and is assembled into a version-3
container whose component table doubles as a random-access index (see
:mod:`repro.core.components`).  The stream is byte-identical to the serial
:func:`repro.core.components.encode_planar` with the same stripe count.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.bitstream import (
    COMPONENT_FLAG_PLANE_DELTA,
    CodecId,
    pack_component_stream,
    pack_stream,
    split_component_payloads,
    split_stripe_payloads,
    unpack_stream,
)
from repro.core.components import plane_residuals, reconstruct_plane_arrays
from repro.core.config import CodecConfig
from repro.core.decoder import decode_payload, resolve_stream_config
from repro.core.encoder import EncodeStatistics, encode_payload, merge_statistics
from repro.core.interface import LosslessImageCodec, require_engine
from repro.exceptions import BitstreamError, ConfigError, ModelStateError, StripingError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage, default_plane_names
from repro.parallel.executor import SerialExecutor, resolve_executor
from repro.parallel.partition import plan_for_cores, plan_stripes

__all__ = ["ParallelCodec"]


def _encode_stripe_task(task: Tuple[int, int, List[int], int, CodecConfig, str]):
    """Worker: encode one stripe; returns (payload, statistics).

    Module-level so it can be pickled into pool workers; the task tuple is
    ``(width, row_count, pixels, bit_depth, config, engine)``.
    """
    width, row_count, pixels, bit_depth, config, engine = task
    stripe = GrayImage(width, row_count, pixels, bit_depth)
    return encode_payload(stripe, config, engine=engine)


def _decode_stripe_task(task: Tuple[bytes, int, int, CodecConfig, str]) -> List[int]:
    """Worker: decode one stripe payload into its row-major pixel list."""
    payload, width, row_count, config, engine = task
    return decode_payload(payload, width, row_count, config, engine=engine)


class ParallelCodec(LosslessImageCodec):
    """Stripe-parallel front-end of the proposed codec.

    Parameters
    ----------
    cores:
        Number of stripes/workers.  ``None`` uses every available CPU.
        ``cores=1`` (or a one-row image) codes a single stripe serially but
        still emits a version-2 container, so the stream format does not
        depend on the machine that produced it.
    config:
        Full codec configuration; defaults to the hardware-faithful preset,
        like :class:`~repro.core.codec.ProposedCodec`.
    executor:
        Optional executor override (any object with a ``map(fn, tasks)``
        method).  Mainly for tests; by default a process pool is used when
        ``cores > 1`` and the platform supports it, with a deterministic
        serial fallback otherwise.
    engine:
        Coding engine applied to every stripe (``"reference"`` or
        ``"fast"``); fast and parallel compose, and the stream stays
        byte-identical across engines either way.
    plane_delta:
        Enable the inter-plane delta predictor for multi-component inputs;
        ignored for grey-scale inputs.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_image
    >>> codec = ParallelCodec(cores=4)
    >>> image = generate_image("lena", size=64)
    >>> codec.decode(codec.encode(image)) == image
    True
    """

    name = "proposed-parallel"

    def __init__(
        self,
        cores: Optional[int] = None,
        config: Optional[CodecConfig] = None,
        executor=None,
        engine: str = "reference",
        plane_delta: bool = False,
    ) -> None:
        if cores is not None and cores <= 0:
            raise ConfigError("cores must be positive, got %d" % cores)
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self._explicit_config = config is not None
        self.config = config if config is not None else CodecConfig.hardware()
        self.engine = require_engine(engine)
        self.plane_delta = plane_delta
        self._executor = executor
        self.last_statistics: Optional[EncodeStatistics] = None

    def _executor_for(self, task_count: int):
        if self._executor is not None:
            return self._executor
        if task_count <= 1:
            return SerialExecutor()
        return resolve_executor(min(self.cores, task_count))

    def encode(self, image: Union[GrayImage, PlanarImage]) -> bytes:
        """Compress ``image`` as ``min(cores, height)`` independent stripes.

        Planar inputs fan out ``planes x stripes`` cell tasks and produce a
        version-3 indexed container; grey inputs keep producing version-2
        striped containers.
        """
        if image.bit_depth != self.config.bit_depth:
            raise ConfigError(
                "image bit depth %d does not match codec bit depth %d"
                % (image.bit_depth, self.config.bit_depth)
            )
        if isinstance(image, PlanarImage):
            return self._encode_planar(image)
        plan = plan_for_cores(image.height, self.cores)
        pixels = image.pixels()
        tasks = [
            (
                image.width,
                spec.row_count,
                pixels[spec.start_row * image.width : spec.stop_row * image.width],
                image.bit_depth,
                self.config,
                self.engine,
            )
            for spec in plan
        ]
        results = self._executor_for(len(tasks)).map(_encode_stripe_task, tasks)
        payloads = [payload for payload, _ in results]

        codec_id = (
            CodecId.PROPOSED_HARDWARE if self.config.use_lut_division else CodecId.PROPOSED
        )
        stream = pack_stream(
            codec_id,
            image.width,
            image.height,
            image.bit_depth,
            b"".join(payloads),
            parameter=self.config.count_bits,
            flags=1 if self.config.use_lut_division else 0,
            stripe_lengths=[len(payload) for payload in payloads],
        )
        statistics = merge_statistics([stats for _, stats in results])
        statistics.total_bytes = len(stream)
        statistics.bits_per_pixel = 8.0 * len(stream) / image.pixel_count
        self.last_statistics = statistics
        return stream

    def _encode_planar(self, image: PlanarImage) -> bytes:
        """Planar encode: one cell task per (plane, stripe) over the pool."""
        plan = plan_for_cores(image.height, self.cores)
        tasks = []
        for residual in plane_residuals(image, self.plane_delta):
            pixels = residual.pixels()
            for spec in plan:
                tasks.append(
                    (
                        image.width,
                        spec.row_count,
                        pixels[spec.start_row * image.width : spec.stop_row * image.width],
                        image.bit_depth,
                        self.config,
                        self.engine,
                    )
                )
        results = self._executor_for(len(tasks)).map(_encode_stripe_task, tasks)
        payloads = [payload for payload, _ in results]
        plane_payloads = [
            payloads[plane * len(plan) : (plane + 1) * len(plan)]
            for plane in range(image.num_planes)
        ]

        codec_id = (
            CodecId.PROPOSED_HARDWARE if self.config.use_lut_division else CodecId.PROPOSED
        )
        stream = pack_component_stream(
            codec_id,
            image.width,
            image.height,
            image.bit_depth,
            plane_payloads,
            parameter=self.config.count_bits,
            flags=1 if self.config.use_lut_division else 0,
            component_flags=COMPONENT_FLAG_PLANE_DELTA if self.plane_delta else 0,
        )
        statistics = merge_statistics([stats for _, stats in results])
        statistics.total_bytes = len(stream)
        statistics.bits_per_pixel = 8.0 * len(stream) / image.sample_count
        self.last_statistics = statistics
        return stream

    def decode(self, data: bytes) -> Union[GrayImage, PlanarImage]:
        """Reconstruct the exact image, decoding stripes in parallel.

        All container versions are accepted, so streams from the serial
        :class:`~repro.core.codec.ProposedCodec` decode here too (as a
        single stripe); version-3 streams fan every (plane, stripe) cell
        over the pool and come back as :class:`PlanarImage`.
        """
        header, payload = unpack_stream(data)
        config = resolve_stream_config(
            header, self.config if self._explicit_config else None
        )
        if header.component_lengths:
            return self._decode_planar(header, payload, config)
        if not header.stripe_lengths:
            pixels = decode_payload(
                payload, header.width, header.height, config, engine=self.engine
            )
            return GrayImage(header.width, header.height, pixels, header.bit_depth)

        try:
            plan = plan_stripes(header.height, len(header.stripe_lengths))
        except StripingError as exc:
            raise BitstreamError("invalid stripe table: %s" % exc) from exc
        tasks = [
            (stripe_payload, header.width, spec.row_count, config, self.engine)
            for spec, stripe_payload in zip(plan, split_stripe_payloads(header, payload))
        ]
        stripe_pixels = self._executor_for(len(tasks)).map(_decode_stripe_task, tasks)
        pixels: List[int] = []
        for part in stripe_pixels:
            pixels.extend(part)
        return GrayImage(header.width, header.height, pixels, header.bit_depth)

    def _decode_planar(self, header, payload, config) -> PlanarImage:
        """Planar decode: fan cell tasks out, then invert the plane delta."""
        try:
            plan = plan_stripes(header.height, header.stripe_count)
        except StripingError as exc:
            raise BitstreamError("invalid stripe table: %s" % exc) from exc
        plane_payloads = split_component_payloads(header, payload)
        tasks = [
            (cell, header.width, spec.row_count, config, self.engine)
            for stripe_payloads in plane_payloads
            for spec, cell in zip(plan, stripe_payloads)
        ]
        try:
            cell_pixels = self._executor_for(len(tasks)).map(_decode_stripe_task, tasks)
        except ModelStateError as exc:
            raise BitstreamError("corrupt cell payload: %s" % exc) from exc
        stripes_per_plane = len(plan)
        residual_arrays = []
        for plane in range(header.component_count):
            pixels: List[int] = []
            for part in cell_pixels[
                plane * stripes_per_plane : (plane + 1) * stripes_per_plane
            ]:
                pixels.extend(part)
            residual_arrays.append(
                np.asarray(pixels, dtype=np.int64).reshape(header.height, header.width)
            )
        planes = reconstruct_plane_arrays(
            residual_arrays, header.bit_depth, header.plane_delta
        )
        names = default_plane_names(header.component_count)
        return PlanarImage(
            [
                GrayImage(
                    header.width,
                    header.height,
                    array.reshape(-1).tolist(),
                    header.bit_depth,
                    name,
                )
                for array, name in zip(planes, names)
            ]
        )
