"""Stripe-parallel encode/decode facade.

:class:`ParallelCodec` is the software realisation of the paper's closing
remark that "the low complexity means that a multi-core solution could be
used to scale up the performance": the image is planned into the same
(planes x stripes) cell grid every front-end uses
(:mod:`repro.core.cellgrid`), and the cell tasks are fanned over a pool of
worker processes instead of run inline.  Because the cells are independent
and the partition is deterministic, the encoded stream is byte-identical
whether the cells are coded serially or in parallel; core count changes the
stream only through the *number* of stripes (more stripes = more cold
adaptive models = slightly worse compression, the same trade-off the
hardware model in :mod:`repro.hardware.multicore` predicts).

Grey inputs produce version-2 (striped) containers, multi-component
:class:`~repro.imaging.planar.PlanarImage` inputs version-3 containers
whose component table doubles as a random-access index — in both cases
byte-identical to the serial encoders with the same stripe count, since
they are literally the same pipeline with a different executor.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.core.cellgrid import decode_selection, encode_grid
from repro.core.config import CodecConfig
from repro.core.encoder import EncodeStatistics
from repro.core.interface import LosslessImageCodec, require_engine
from repro.exceptions import ConfigError
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.parallel.executor import SerialExecutor, resolve_executor

__all__ = ["ParallelCodec"]


class ParallelCodec(LosslessImageCodec):
    """Stripe-parallel front-end of the proposed codec.

    Parameters
    ----------
    cores:
        Number of stripes/workers.  ``None`` uses every available CPU.
        ``cores=1`` (or a one-row image) codes a single stripe serially but
        still emits a version-2 container, so the stream format does not
        depend on the machine that produced it.
    config:
        Full codec configuration; defaults to the hardware-faithful preset,
        like :class:`~repro.core.codec.ProposedCodec`.
    executor:
        Optional executor override (any object with a ``map(fn, tasks)``
        method).  Mainly for tests; by default a process pool is used when
        ``cores > 1`` and the platform supports it, with a deterministic
        serial fallback otherwise.
    engine:
        Registered coding engine applied to every cell (see
        :func:`repro.core.interface.register_engine`); engines and
        parallelism compose, and the stream stays byte-identical across
        engines either way.
    plane_delta:
        Enable the inter-plane delta predictor for multi-component inputs;
        ignored for grey-scale inputs.

    Examples
    --------
    >>> from repro.imaging.synthetic import generate_image
    >>> codec = ParallelCodec(cores=4)
    >>> image = generate_image("lena", size=64)
    >>> codec.decode(codec.encode(image)) == image
    True
    """

    name = "proposed-parallel"

    def __init__(
        self,
        cores: Optional[int] = None,
        config: Optional[CodecConfig] = None,
        executor=None,
        engine: str = "reference",
        plane_delta: bool = False,
    ) -> None:
        if cores is not None and cores <= 0:
            raise ConfigError("cores must be positive, got %d" % cores)
        self.cores = cores if cores is not None else (os.cpu_count() or 1)
        self._explicit_config = config is not None
        self.config = config if config is not None else CodecConfig.hardware()
        self.engine = require_engine(engine)
        self.plane_delta = plane_delta
        self._executor = executor
        self.last_statistics: Optional[EncodeStatistics] = None

    def _executor_for(self, task_count: int):
        if self._executor is not None:
            return self._executor
        if task_count <= 1:
            return SerialExecutor()
        return resolve_executor(min(self.cores, task_count))

    def encode(self, image: Union[GrayImage, PlanarImage]) -> bytes:
        """Compress ``image`` as ``min(cores, height)`` independent stripes.

        Planar inputs fan out ``planes x stripes`` cell tasks and produce a
        version-3 indexed container; grey inputs keep producing version-2
        striped containers.
        """
        stream, statistics = encode_grid(
            image,
            self.config,
            engine=self.engine,
            stripes=min(self.cores, image.height),
            plane_delta=self.plane_delta,
            executor=self._executor_for,
            striped=True,
        )
        self.last_statistics = statistics
        return stream

    def decode(self, data: bytes) -> Union[GrayImage, PlanarImage]:
        """Reconstruct the exact image, decoding cells in parallel.

        All container versions are accepted, so streams from the serial
        :class:`~repro.core.codec.ProposedCodec` decode here too (as a
        single cell); version-3 streams fan every (plane, stripe) cell over
        the pool and come back as :class:`PlanarImage`.
        """
        selection = decode_selection(
            data,
            self.config if self._explicit_config else None,
            engine=self.engine,
            executor=self._executor_for,
        )
        return selection.image()
