"""Stripe-parallel codec subsystem.

The paper's multi-core hardware option — several codec cores side by side,
one horizontal stripe each — realised in software:

* :mod:`repro.parallel.partition` — the deterministic balanced stripe
  partitioner shared by the encoder and the decoder;
* :mod:`repro.parallel.executor` — the process-pool executor with a
  deterministic serial fallback;
* :mod:`repro.parallel.codec` — :class:`ParallelCodec`, the facade that
  mirrors :class:`~repro.core.codec.ProposedCodec` and produces/consumes
  version-2 (striped) containers.
"""

from repro.parallel.codec import ParallelCodec
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    process_pool_available,
    resolve_executor,
)
from repro.parallel.partition import (
    StripeSpec,
    extract_stripe,
    plan_for_cores,
    plan_stripes,
)

__all__ = [
    "ParallelCodec",
    "ProcessExecutor",
    "SerialExecutor",
    "StripeSpec",
    "extract_stripe",
    "plan_for_cores",
    "plan_stripes",
    "process_pool_available",
    "resolve_executor",
]
