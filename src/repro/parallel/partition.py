"""Horizontal stripe partitioning for the stripe-parallel codec.

The paper's multi-core option replicates the whole pipeline once per core
and hands every core a horizontal stripe of the image.  This module is the
software equivalent of that wiring: a deterministic, balanced partition of
the image rows that both the encoder and the decoder derive independently
(the container's stripe table stores payload *lengths*, not row counts, so
the partition itself must be a pure function of ``(height, stripes)``).

The partition is balanced — stripe heights differ by at most one row, the
taller stripes coming first — which minimises the wall-clock of the slowest
core.  ``plan_for_cores`` clamps the stripe count to the image height, so
asking for more cores than rows degrades gracefully to one-row stripes.

This module deliberately depends only on :mod:`repro.exceptions` and the
image container so the core decoder can import it without creating an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import StripingError
from repro.imaging.image import GrayImage

__all__ = ["StripeSpec", "plan_stripes", "plan_for_cores", "extract_stripe"]


@dataclass(frozen=True)
class StripeSpec:
    """One horizontal stripe of an image partition."""

    index: int
    start_row: int
    row_count: int

    @property
    def stop_row(self) -> int:
        """First row *after* the stripe (exclusive bound)."""
        return self.start_row + self.row_count


def plan_stripes(height: int, stripes: int) -> List[StripeSpec]:
    """Partition ``height`` rows into exactly ``stripes`` balanced stripes.

    Stripe heights differ by at most one row; the first ``height % stripes``
    stripes carry the extra row.  Raises :class:`StripingError` when the
    request cannot be satisfied (more stripes than rows, or a non-positive
    count).
    """
    if height <= 0:
        raise StripingError("image height must be positive, got %d" % height)
    if stripes <= 0:
        raise StripingError("stripe count must be positive, got %d" % stripes)
    if stripes > height:
        raise StripingError(
            "cannot split %d rows into %d stripes" % (height, stripes)
        )
    base = height // stripes
    extra = height % stripes
    plan: List[StripeSpec] = []
    start = 0
    for index in range(stripes):
        rows = base + (1 if index < extra else 0)
        plan.append(StripeSpec(index=index, start_row=start, row_count=rows))
        start += rows
    return plan


def plan_for_cores(height: int, cores: int) -> List[StripeSpec]:
    """Partition for ``cores`` workers, clamping to at most one stripe per row.

    ``cores`` greater than the image height simply yields ``height``
    single-row stripes — the extra workers would have nothing to do.
    """
    if cores <= 0:
        raise StripingError("core count must be positive, got %d" % cores)
    return plan_stripes(height, min(cores, height))


def extract_stripe(image: GrayImage, spec: StripeSpec) -> GrayImage:
    """Return the sub-image covered by ``spec``."""
    if spec.start_row < 0 or spec.stop_row > image.height or spec.row_count <= 0:
        raise StripingError(
            "stripe rows [%d, %d) outside image of height %d"
            % (spec.start_row, spec.stop_row, image.height)
        )
    rows = [image.row(y) for y in range(spec.start_row, spec.stop_row)]
    name = "%s-stripe%d" % (image.name, spec.index) if image.name else ""
    return GrayImage.from_rows(rows, bit_depth=image.bit_depth, name=name)
