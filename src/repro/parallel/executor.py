"""Stripe execution backends: a process pool with a serial fallback.

The stripe-parallel codec maps one task per stripe over an executor.  Two
interchangeable backends exist:

``SerialExecutor``
    runs the tasks in order in the calling process.  It is the deterministic
    reference backend, the ``cores=1`` fast path, and the fallback on
    platforms where process pools are unavailable (no ``fork``/``spawn``
    support, sandboxed interpreters without working semaphores, ...).

``ProcessExecutor``
    fans the tasks out over a :class:`concurrent.futures.ProcessPoolExecutor`.
    Results are returned in task order, so the assembled stream is
    byte-identical to the serial backend's — parallelism never changes the
    bits, only the wall-clock.

``resolve_executor`` picks the right backend for a requested core count and
degrades gracefully: any failure to stand up a pool yields a
``SerialExecutor`` instead of an exception.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "process_pool_available",
    "resolve_executor",
]


class SerialExecutor:
    """Run stripe tasks one after the other in the calling process."""

    #: Number of worker processes ("1" — the calling process).
    cores = 1
    #: True when tasks run in worker processes (never, for this backend).
    is_parallel = False

    def map(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> List[_R]:
        """Apply ``fn`` to every task, in order."""
        return [fn(task) for task in tasks]


class ProcessExecutor:
    """Fan stripe tasks out over a process pool.

    Parameters
    ----------
    cores:
        Number of worker processes.  The pool is created lazily on the first
        :meth:`map` call and torn down again afterwards, so no worker
        processes linger between encodes.
    """

    is_parallel = True

    def __init__(self, cores: int) -> None:
        if cores < 2:
            raise ValueError("ProcessExecutor needs at least 2 cores, got %d" % cores)
        self.cores = cores

    def map(self, fn: Callable[[_T], _R], tasks: Sequence[_T]) -> List[_R]:
        """Apply ``fn`` to every task across the pool; results keep task order."""
        import concurrent.futures

        workers = min(self.cores, len(tasks)) or 1
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, tasks))


def process_pool_available() -> bool:
    """Whether this platform can stand up a working process pool.

    ``multiprocessing`` may be importable yet unusable (missing ``sem_open``
    on some BSDs and sandboxes, no start method at all on bare interpreters),
    so probe the pieces a pool actually needs instead of the import alone.
    """
    try:
        import multiprocessing
        import multiprocessing.synchronize  # noqa: F401  (probes sem_open support)

        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, OSError):
        return False


def resolve_executor(cores: Optional[int]):
    """Pick an executor for ``cores`` workers.

    ``None`` means "all available cores".  ``cores <= 1`` — or any platform
    where a process pool cannot be created — yields the deterministic
    :class:`SerialExecutor`.
    """
    if cores is None:
        import os

        cores = os.cpu_count() or 1
    if cores <= 1 or not process_pool_available():
        return SerialExecutor()
    try:
        return ProcessExecutor(cores)
    except (ValueError, OSError):
        return SerialExecutor()
