"""Single-flight coalescing of identical in-flight requests.

When many clients ask for the same (key, plane/region) at once — the
thundering-herd shape of a cache miss going viral — decoding the cell once
per request would stampede the backend and the CPU.  :class:`SingleFlight`
collapses the herd: the first caller for a key becomes the *leader* and
runs the supplier; every concurrent caller for the same key blocks until
the leader finishes and receives the same result (or the same exception).

The map is keyed by arbitrary hashables and safe to use from any mix of
threads — the serving tier calls it from thread-pool workers, the tests
from raw :class:`threading.Thread` herds.  Completed calls are removed
*before* waiters are released, so a caller arriving after completion
starts a fresh flight and observes current state (e.g. a now-warm cache)
instead of a stale result.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, TypeVar

from repro.exceptions import DeadlineExceededError

__all__ = ["SingleFlight"]

T = TypeVar("T")


class _Flight:
    """State of one in-flight call: a latch plus its outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Run ``supplier`` once per key across concurrent callers.

    Counters (for ``/stats`` and the load benchmark):

    * ``leaders`` — calls that actually executed a supplier;
    * ``coalesced`` — calls that piggybacked on a leader's flight;
    * ``timeouts`` — followers whose own deadline lapsed mid-wait.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}
        self._leaders = 0
        self._coalesced = 0
        self._timeouts = 0

    def run(
        self,
        key: Hashable,
        supplier: Callable[[], T],
        timeout: Optional[float] = None,
    ) -> T:
        """Return ``supplier()``, deduplicated against concurrent callers.

        Exactly one concurrent caller per ``key`` executes ``supplier``;
        the rest wait and share the outcome.  A supplier exception is
        re-raised in every caller (the same exception object — suppliers
        should raise immutable, message-style errors).

        ``timeout`` bounds a *follower's* wait: a coalesced caller whose
        own deadline is shorter than the leader's remaining work raises
        :class:`DeadlineExceededError` instead of overshooting its budget.
        The flight itself is unaffected — the leader keeps running and
        other waiters still get the result.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                self._leaders += 1
                leading = True
            else:
                self._coalesced += 1
                leading = False

        if not leading:
            if not flight.done.wait(timeout):
                with self._lock:
                    self._timeouts += 1
                raise DeadlineExceededError(
                    "coalesced wait on %r outlived the caller's deadline" % (key,)
                )
            if flight.error is not None:
                raise flight.error
            return flight.result  # type: ignore[return-value]

        try:
            flight.result = supplier()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Remove before releasing waiters: late arrivals must start a
            # fresh flight rather than adopt a completed one.
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result  # type: ignore[return-value]

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "leaders": self._leaders,
                "coalesced": self._coalesced,
                "timeouts": self._timeouts,
                "in_flight": len(self._flights),
            }
