"""Fault injection for the serving tier: wrap a backend, break it on cue.

:class:`FaultInjector` is a :class:`~repro.store.backends.BlobBackend`
proxy that injects configurable faults into the data-path operations
(``get`` / ``read_range`` / ``length`` / ``put`` / ``delete`` /
``contains``) while leaving observability (``stats``) untouched — a
chaos run must never blind the harness that is asserting recovery.

Faults, all runtime-switchable and thread-safe:

* **kill** — every data operation raises ``StoreError`` until
  :meth:`revive` (a dead shard);
* **stall** — every data operation blocks (a hung disk / network mount),
  either for a fixed per-operation duration or until :meth:`clear_stall`.
  The stall is polled in small slices and aborts early when the calling
  request's :class:`~repro.serve.deadline.RequestContext` is abandoned,
  so a stalled backend does not pin a worker thread past the request
  deadline — exactly the bad day the deadline machinery exists for;
* **fail_next(n)** — the next ``n`` data operations raise ``StoreError``
  (transient I/O errors);
* **latency** — a fixed delay added to every data operation (a slow
  volume).

Counters (``kills``, ``stalls``, ``errors``, ``delays``, ``operations``)
ride in the wrapped :meth:`stats` under ``"chaos"``, so ``/stats``
exposes exactly what the injector did to each shard.  Install one with
:meth:`repro.store.store.ImageStore.wrap_backend`::

    injector = store.wrap_backend(FaultInjector)
    injector.stall()          # shard hangs
    ...
    injector.clear_stall()    # shard recovers
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import StoreError
from repro.serve.deadline import current_context
from repro.store.backends import BlobBackend

__all__ = ["FaultInjector"]

#: Slice length of the stall polling loop, seconds.
_STALL_SLICE = 0.02


class FaultInjector(BlobBackend):
    """A :class:`BlobBackend` proxy injecting kill/stall/error/latency faults."""

    def __init__(
        self,
        inner: BlobBackend,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self._clock = clock
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._killed = False
        self._stalled = False
        self._stall_seconds: Optional[float] = None
        self._fail_next = 0
        self._latency = 0.0
        self._counters: Dict[str, int] = {
            "operations": 0,
            "kills": 0,
            "stalls": 0,
            "errors": 0,
            "delays": 0,
        }

    # ------------------------------------------------------------------ #
    # fault switches
    # ------------------------------------------------------------------ #

    def kill(self) -> None:
        """Every data operation raises ``StoreError`` until :meth:`revive`."""
        with self._lock:
            self._killed = True

    def revive(self) -> None:
        with self._lock:
            self._killed = False

    def stall(self, seconds: Optional[float] = None) -> None:
        """Block data operations: ``seconds`` each, or until :meth:`clear_stall`."""
        if seconds is not None and seconds < 0.0:
            raise StoreError("stall duration must be >= 0, got %r" % seconds)
        with self._lock:
            self._stalled = True
            self._stall_seconds = seconds

    def clear_stall(self) -> None:
        with self._lock:
            self._stalled = False
            self._stall_seconds = None

    def fail_next(self, count: int = 1) -> None:
        """The next ``count`` data operations raise ``StoreError``."""
        if count < 0:
            raise StoreError("fail_next count must be >= 0, got %d" % count)
        with self._lock:
            self._fail_next = count

    def add_latency(self, seconds: float) -> None:
        """Add a fixed delay to every data operation (``0`` clears it)."""
        if seconds < 0.0:
            raise StoreError("latency must be >= 0, got %r" % seconds)
        with self._lock:
            self._latency = seconds

    @property
    def faults(self) -> Dict[str, object]:
        """The currently armed faults (for harness logging)."""
        with self._lock:
            return {
                "killed": self._killed,
                "stalled": self._stalled,
                "stall_seconds": self._stall_seconds,
                "fail_next": self._fail_next,
                "latency_seconds": self._latency,
            }

    # ------------------------------------------------------------------ #
    # injection
    # ------------------------------------------------------------------ #

    def _apply(self, operation: str) -> None:
        with self._lock:
            self._counters["operations"] += 1
            if self._killed:
                self._counters["kills"] += 1
                raise StoreError("chaos: backend is killed (%s)" % operation)
            if self._fail_next > 0:
                self._fail_next -= 1
                self._counters["errors"] += 1
                raise StoreError("chaos: injected %s failure" % operation)
            latency = self._latency
            stalled = self._stalled
        if latency > 0.0:
            with self._lock:
                self._counters["delays"] += 1
            self._sleeper(latency)
        if stalled:
            self._stall(operation)

    def _stall(self, operation: str) -> None:
        """Block until the stall clears, its duration lapses, or the
        calling request is abandoned (deadline/cancel) — polled in slices
        so a cleared stall or an expired deadline frees the worker fast."""
        with self._lock:
            self._counters["stalls"] += 1
        started = self._clock()
        while True:
            with self._lock:
                if not self._stalled:
                    return
                limit = self._stall_seconds
            if limit is not None and self._clock() - started >= limit:
                return
            context = current_context()
            if context is not None and context.should_abort:
                raise StoreError(
                    "chaos: stalled %s abandoned by an expired request" % operation
                )
            self._sleeper(_STALL_SLICE)

    # ------------------------------------------------------------------ #
    # BlobBackend data path (faults injected)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> None:
        self._apply("put")
        self.inner.put(key, data)

    def get(self, key: str) -> bytes:
        self._apply("get")
        return self.inner.get(key)

    def read_range(self, key: str, offset: int, length: int) -> bytes:
        self._apply("read_range")
        return self.inner.read_range(key, offset, length)

    def read_ranges(
        self, key: str, spans: Sequence[Tuple[int, int]]
    ) -> List[bytes]:
        # One fault application per batch, matching the one backend access
        # the batched path performs.
        self._apply("read_range")
        return self.inner.read_ranges(key, spans)

    def length(self, key: str) -> int:
        self._apply("length")
        return self.inner.length(key)

    def contains(self, key: str) -> bool:
        self._apply("contains")
        return self.inner.contains(key)

    def keys(self) -> Iterator[str]:
        self._apply("keys")
        return self.inner.keys()

    def delete(self, key: str) -> None:
        self._apply("delete")
        self.inner.delete(key)

    # ------------------------------------------------------------------ #
    # observability (never faulted) and lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        payload = dict(self.inner.stats())
        with self._lock:
            payload["chaos"] = dict(self._counters)  # type: ignore[assignment]
        return payload

    def close(self) -> None:
        self.inner.close()
