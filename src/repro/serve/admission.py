"""Admission control of the serving tier: shed load instead of queueing it.

Three cooperating mechanisms, all thread-safe and all observable through
``GET /stats``:

:class:`AdmissionController`
    A watermark-bounded gauge of admitted in-flight requests.  Past the
    **high** watermark the server sheds (``429`` + ``Retry-After``) and
    keeps shedding until the gauge falls back to the **low** watermark —
    the hysteresis stops the boundary from flapping admit/shed on every
    request.  Because every admitted request holds at most one decode
    slot at a time, bounding admissions bounds the executor's decode
    queue too: an overloaded server answers quickly with 429s instead of
    buffering an unbounded backlog that it can only age, never serve.

:class:`TokenBucket`
    The classic rate limiter: ``rate`` tokens per second refill up to a
    ``burst`` capacity; a request costs one token.  Purely computational
    (no timers) and driven by an injectable clock so tests are exact.

:class:`ClientLimiter`
    Per-client (peer host) connection caps and token-bucket rate limits.
    Entries are created on first contact and pruned once idle so an
    address sweep cannot grow the table without bound.

All limits are *off* by default (``0`` disables) except the in-flight
watermark, which defaults to a generous bound — an unbounded accept queue
is precisely the failure mode this module exists to remove.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.exceptions import ConfigError

__all__ = [
    "AdmissionController",
    "ClientLimiter",
    "TokenBucket",
    "DEFAULT_MAX_INFLIGHT",
]

#: Default high watermark on admitted in-flight requests.
DEFAULT_MAX_INFLIGHT = 256

#: Pruning threshold of the per-client table (entries, not clients).
_MAX_CLIENT_ENTRIES = 4096


class TokenBucket:
    """Token-bucket rate limiter: ``rate`` tokens/s up to ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ConfigError("token bucket rate must be positive, got %r" % rate)
        if burst < 1.0:
            raise ConfigError("token bucket burst must be >= 1, got %r" % burst)
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """Watermark-based load shedding over a gauge of admitted requests.

    Parameters
    ----------
    high:
        Admitted in-flight requests at or above which new work is shed.
    low:
        Gauge level at which shedding stops (default ``high // 2``);
        must satisfy ``0 < low <= high``.
    retry_after:
        The ``Retry-After`` hint (seconds) attached to shed responses.

    Thread-safe: the gauge, the shedding latch and the counters mutate
    under one lock, so the admitted gauge can never exceed ``high`` and
    shedding exhibits strict hysteresis — once tripped at ``high`` it
    only clears when the gauge falls to ``low`` (both property-tested in
    ``tests/serve/test_admission_properties.py``).
    """

    def __init__(
        self,
        high: int = DEFAULT_MAX_INFLIGHT,
        low: Optional[int] = None,
        retry_after: float = 1.0,
    ) -> None:
        if high < 1:
            raise ConfigError("admission high watermark must be >= 1, got %d" % high)
        if low is None:
            low = max(1, high // 2)
        if low < 1 or low > high:
            raise ConfigError(
                "admission low watermark must be in [1, %d], got %d" % (high, low)
            )
        if retry_after <= 0.0:
            raise ConfigError("retry_after must be positive, got %r" % retry_after)
        self.high = high
        self.low = low
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._active = 0
        self._shedding = False
        self._admitted = 0
        self._shed = 0
        self._high_water = 0

    def try_admit(self) -> bool:
        """Admit one request (the caller must :meth:`release` it later)."""
        with self._lock:
            if self._shedding:
                if self._active > self.low:
                    self._shed += 1
                    return False
                self._shedding = False
            if self._active >= self.high:
                self._shedding = True
                self._shed += 1
                return False
            self._active += 1
            self._admitted += 1
            if self._active > self._high_water:
                self._high_water = self._active
            return True

    def release(self) -> None:
        """Return one admitted request's slot."""
        with self._lock:
            if self._active <= 0:
                raise ConfigError("admission release without a matching admit")
            self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def shedding(self) -> bool:
        with self._lock:
            return self._shedding

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "high_watermark": self.high,
                "low_watermark": self.low,
                "active": self._active,
                "high_water": self._high_water,
                "admitted": self._admitted,
                "shed": self._shed,
                "shedding": self._shedding,
                "retry_after_seconds": self.retry_after,
            }


class _ClientEntry:
    __slots__ = ("connections", "bucket")

    def __init__(self, bucket: Optional[TokenBucket]) -> None:
        self.connections = 0
        self.bucket = bucket


class ClientLimiter:
    """Per-client connection caps and request rate limits, keyed by host.

    Parameters
    ----------
    max_connections:
        Concurrent connections allowed per client host; ``0`` disables.
    rate:
        Requests per second allowed per client host; ``0.0`` disables.
    burst:
        Token-bucket capacity of the per-client rate limit (default
        ``max(1, 2 * rate)``).
    """

    def __init__(
        self,
        max_connections: int = 0,
        rate: float = 0.0,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_connections < 0:
            raise ConfigError(
                "per-client connection cap must be >= 0, got %d" % max_connections
            )
        if rate < 0.0:
            raise ConfigError("per-client rate must be >= 0, got %r" % rate)
        self.max_connections = max_connections
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2.0 * rate)
        self._clock = clock
        self._lock = threading.Lock()
        self._clients: Dict[str, _ClientEntry] = {}
        self._rejected_connections = 0
        self._rate_limited = 0

    @property
    def enabled(self) -> bool:
        return self.max_connections > 0 or self.rate > 0.0

    def _entry(self, host: str) -> _ClientEntry:
        entry = self._clients.get(host)
        if entry is None:
            bucket = (
                TokenBucket(self.rate, self.burst, clock=self._clock)
                if self.rate > 0.0
                else None
            )
            entry = self._clients[host] = _ClientEntry(bucket)
            self._prune()
        return entry

    def _prune(self) -> None:
        """Drop idle entries once the table grows past the bound (lock held)."""
        if len(self._clients) <= _MAX_CLIENT_ENTRIES:
            return
        for host in [
            host for host, entry in self._clients.items() if entry.connections == 0
        ]:
            del self._clients[host]

    def connect(self, host: str) -> bool:
        """Account one new connection; ``False`` means over the cap."""
        with self._lock:
            entry = self._entry(host)
            if 0 < self.max_connections <= entry.connections:
                self._rejected_connections += 1
                return False
            entry.connections += 1
            return True

    def disconnect(self, host: str) -> None:
        """Return a connection slot taken by :meth:`connect`."""
        with self._lock:
            entry = self._clients.get(host)
            if entry is not None and entry.connections > 0:
                entry.connections -= 1

    def allow_request(self, host: str) -> bool:
        """Charge one request against the client's rate budget."""
        if self.rate <= 0.0:
            return True
        with self._lock:
            bucket = self._entry(host).bucket
        assert bucket is not None
        if bucket.try_acquire():
            return True
        with self._lock:
            self._rate_limited += 1
        return False

    def connections(self, host: str) -> int:
        with self._lock:
            entry = self._clients.get(host)
            return entry.connections if entry is not None else 0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_connections_per_client": self.max_connections,
                "rate_per_second": self.rate,
                "burst": self.burst if self.rate > 0.0 else 0.0,
                "tracked_clients": len(self._clients),
                "open_connections": sum(
                    entry.connections for entry in self._clients.values()
                ),
                "rejected_connections": self._rejected_connections,
                "rate_limited": self._rate_limited,
            }
