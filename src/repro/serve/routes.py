"""The declarative HTTP API surface of the serve tier.

One table — :data:`ROUTES` — is the single source of truth for every
endpoint the tier speaks.  Three consumers dispatch from it:

* the in-process server (:class:`~repro.serve.app.ReproServer`) matches
  requests against it and calls the named handler method;
* the multi-process proxy (:mod:`repro.serve.proxy`) matches against the
  *same* table and forwards to shard workers, so the two topologies
  cannot drift apart route by route;
* the docs gate (``benchmarks/check_docs.py``) renders every entry and
  diffs it against ``docs/api.md``, so adding a route without
  documenting it fails CI.

The 405-vs-404 distinction is *derived* from the table instead of a
hand-kept prefix list: a request whose path matches some route's shape
but whose method matches none answers ``405``; a path no route shape
matches answers ``404``.

The stable **error envelope** also lives here: every error response body
is ``{"error": message, "code": code, "request_id": id}`` where ``code``
is one of :data:`ERROR_CODES` — a machine-readable failure class clients
dispatch on (:meth:`~repro.serve.client.ServeClient` raises a typed
exception per code) without sniffing status text.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bitstream import SUPPORTED_VERSIONS
from repro.core.interface import engine_names
from repro.exceptions import (
    BlobNotFoundError,
    ConfigError,
    DeadlineExceededError,
    ImageFormatError,
    OverloadedError,
    ReproError,
    StoreError,
)
from repro.serve.http import HttpProtocolError, json_payload

__all__ = [
    "ERROR_CODES",
    "ROUTES",
    "Route",
    "classify_error",
    "error_payload",
    "match_route",
    "new_request_id",
    "route_templates",
    "split_path",
    "version_payload",
]


@dataclass(frozen=True)
class Route:
    """One endpoint: method + path shape + the handler that serves it.

    ``pattern`` is the path split into segments; a segment named in
    braces (``{key}``, ``{plane}``, ``{range}``) captures that path part
    as a parameter, converted by :data:`_CONVERTERS`.  ``handler`` names
    the server method (``_handle_<handler>``) both the in-process app
    and the proxy implement; ``endpoint`` is the stats label.
    ``admission_exempt`` routes bypass admission control and rate limits
    (an operator must be able to observe an overloaded server);
    ``streaming`` routes honour ``?stream=1``.
    """

    method: str
    pattern: Tuple[str, ...]
    endpoint: str
    handler: str
    admission_exempt: bool = False
    streaming: bool = False

    @property
    def template(self) -> str:
        """The route as documented: ``GET /images/{key}/region/{range}``."""
        return "%s /%s" % (self.method, "/".join(self.pattern))


def _convert_plane(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigError("plane index %r is not an integer" % text) from None


def _convert_range(text: str) -> Tuple[int, int]:
    start, separator, stop = text.partition("-")
    if not separator:
        raise ConfigError("region must be START-STOP stripe indices, got %r" % text)
    try:
        return int(start), int(stop)
    except ValueError:
        raise ConfigError(
            "region must be START-STOP stripe indices, got %r" % text
        ) from None


#: Parameter converters by placeholder name; unlisted names pass through
#: as strings.  Conversion failures are client errors (400).
_CONVERTERS: Dict[str, Callable[[str], object]] = {
    "plane": _convert_plane,
    "range": _convert_range,
}


ROUTES: Tuple[Route, ...] = (
    Route("GET", ("healthz",), "healthz", "healthz", admission_exempt=True),
    Route("GET", ("stats",), "stats", "stats", admission_exempt=True),
    Route("GET", ("version",), "version", "version", admission_exempt=True),
    Route("GET", ("catalog",), "catalog", "catalog"),
    Route("PUT", ("images",), "put_image", "put_image"),
    Route("GET", ("images", "{key}"), "get_image", "get_image"),
    Route("DELETE", ("images", "{key}"), "delete_image", "delete_image"),
    Route("GET", ("images", "{key}", "plane", "{plane}"), "get_plane", "get_plane"),
    Route(
        "GET",
        ("images", "{key}", "region", "{range}"),
        "get_region",
        "get_region",
        streaming=True,
    ),
    Route(
        "POST",
        ("images", "{key}", "regions"),
        "get_regions",
        "get_regions",
        streaming=True,
    ),
)


def split_path(path: str) -> List[str]:
    """A request path as non-empty segments (the matcher's input shape)."""
    return [part for part in path.split("/") if part]


def _pattern_params(
    pattern: Sequence[str], parts: Sequence[str]
) -> Optional[Dict[str, object]]:
    """Parameters captured by ``pattern`` over ``parts``; None on shape
    mismatch.  Conversion errors propagate (the shape *did* match)."""
    if len(pattern) != len(parts):
        return None
    params: Dict[str, object] = {}
    for segment, part in zip(pattern, parts):
        if segment.startswith("{") and segment.endswith("}"):
            name = segment[1:-1]
            converter = _CONVERTERS.get(name)
            params[name] = converter(part) if converter is not None else part
        elif segment != part:
            return None
    return params


def match_route(
    method: str, parts: Sequence[str], path: str = ""
) -> Tuple[Route, Dict[str, object]]:
    """Match one request against :data:`ROUTES`.

    Returns the matching route and its captured, converted parameters.
    A path that matches some route's shape under a different method
    raises a 405 :class:`HttpProtocolError`; a path matching no shape at
    all raises :class:`BlobNotFoundError` (answered 404).  Parameter
    conversion failures raise :class:`ConfigError` (answered 400).
    """
    if not path:
        path = "/" + "/".join(str(part) for part in parts)
    shape_matched = False
    for route in ROUTES:
        if len(route.pattern) != len(parts):
            continue
        if route.method != method:
            # Defer conversion: shape comparison only, so GET /images/x/
            # plane/y with a bad plane under the wrong method stays 405.
            literal_match = all(
                segment.startswith("{") or segment == part
                for segment, part in zip(route.pattern, parts)
            )
            shape_matched = shape_matched or literal_match
            continue
        params = _pattern_params(route.pattern, parts)
        if params is not None:
            return route, params
    if shape_matched:
        raise HttpProtocolError(405, "%s is not supported on %s" % (method, path))
    raise BlobNotFoundError("no route for %s %s" % (method, path))


def route_templates() -> List[str]:
    """Every route rendered as documented — the docs-gate contract."""
    return [route.template for route in ROUTES]


# ---------------------------------------------------------------------- #
# error envelope
# ---------------------------------------------------------------------- #

#: Machine-readable failure classes of the error envelope, with the HTTP
#: status each is normally answered with.  Clients dispatch on the code;
#: the status is advisory (proxies forward worker envelopes verbatim).
ERROR_CODES: Dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "protocol": 400,
    "shed": 429,
    "deadline": 504,
    "draining": 503,
    "upstream_unhealthy": 503,
    "internal": 500,
}

_STATUS_CODES: Dict[int, str] = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "protocol",
    411: "protocol",
    413: "protocol",
    429: "shed",
    431: "protocol",
    500: "internal",
    501: "protocol",
    503: "draining",
    504: "deadline",
}


def classify_error(status: int, error: Optional[BaseException] = None) -> str:
    """The envelope code for one failure: exception type first, then status.

    The exception carries more intent than the status (a
    :class:`StoreError` is an unhealthy upstream shard regardless of how
    an older layer mapped it), so typed errors win; anything unmapped
    falls back on the status table and finally on ``internal``.
    """
    if error is not None:
        if isinstance(error, OverloadedError):
            return "shed"
        if isinstance(error, DeadlineExceededError):
            return "deadline"
        if isinstance(error, HttpProtocolError):
            return _STATUS_CODES.get(error.status, "protocol")
        if isinstance(error, BlobNotFoundError):
            return "not_found"
        if isinstance(error, (ConfigError, ImageFormatError)):
            return "bad_request"
        if isinstance(error, StoreError):
            return "upstream_unhealthy"
        if isinstance(error, ReproError):
            return "internal"
    return _STATUS_CODES.get(status, "internal")


def new_request_id() -> str:
    """A fresh request id: 12 hex chars, unique enough to grep a log by."""
    return secrets.token_hex(6)


def error_payload(message: str, code: str, request_id: str) -> bytes:
    """The structured error envelope every error response carries."""
    return json_payload({"error": message, "code": code, "request_id": request_id})


# ---------------------------------------------------------------------- #
# version surface
# ---------------------------------------------------------------------- #


def server_version() -> str:
    """The package version the serving code was imported from."""
    import repro

    return repro.__version__


def version_payload() -> Dict[str, object]:
    """The ``GET /version`` document: package + format + engine surface.

    The proxy compares ``version`` against each worker's at startup and
    refuses mismatched workers — a rolling deploy must not silently mix
    wire behaviours behind one proxy.
    """
    return {
        "version": server_version(),
        "container_versions": list(SUPPORTED_VERSIONS),
        "engines": list(engine_names()),
    }
