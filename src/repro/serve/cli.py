"""The ``repro-serve`` console script.

Boots the asyncio serving tier over N freshly opened (or pre-existing)
store shards::

    repro-serve --shards 2 --backend fs --root /var/lib/repro --port 8037

prints one machine-readable line once the socket is bound::

    repro-serve: listening on http://127.0.0.1:8037 (2 shard(s), fs backend)

and serves until interrupted.  ``--port 0`` binds an ephemeral port (the
printed line carries the real one — the CI smoke job parses it), and
without ``--root`` the shards live in a throwaway temporary directory, so
``repro-serve`` with no arguments is a complete self-contained demo
server.

Shard layout under ``--root``: ``shard-00``, ``shard-01``, … — directories
for the ``fs`` backend, ``shard-NN.sqlite`` files for ``sqlite``.  Reusing
the same root re-opens the same shards with the same names, and since
routing hashes shard *names*, keys keep their placement across restarts.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cli import _print_error, add_version_argument
from repro.core.interface import ENGINES
from repro.exceptions import ReproError
from repro.serve.admission import DEFAULT_MAX_INFLIGHT
from repro.serve.app import DEFAULT_DEADLINE_SECONDS, ImageService, ReproServer
from repro.serve.health import HealthProber
from repro.store.cache import DEFAULT_CACHE_BYTES, DEFAULT_ENCODED_CACHE_BYTES
from repro.store.store import ImageStore

__all__ = ["serve_main", "build_parser", "open_shards", "shard_paths"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve stored images over HTTP: sharded routing, "
        "request coalescing, cached random access.",
    )
    add_version_argument(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=8037,
        help="TCP port; 0 binds an ephemeral port (default 8037)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="number of store shards keys are routed across (default 1)",
    )
    parser.add_argument(
        "--topology",
        choices=("thread", "proc"),
        default="thread",
        help="process layout: 'thread' serves every shard in this process "
        "on one thread pool; 'proc' runs each shard in its own worker "
        "process behind a routing proxy, escaping the GIL for CPU-bound "
        "decodes (default thread)",
    )
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=1,
        metavar="W",
        help="worker processes per shard under --topology proc; keyed "
        "reads stick to an affinity worker and fail over to the others "
        "(default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("fs", "sqlite"),
        default="fs",
        help="blob storage of every shard (default fs)",
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="R",
        help="rendezvous owners per key: writes fan out to all R, reads "
        "fail over between them (default 1; clamped to the shard count)",
    )
    parser.add_argument(
        "--reshard",
        action="store_true",
        help="treat the highest-numbered shard as newly joining: serve on "
        "the first N-1 shards and migrate the moved keys onto the last "
        "one in the background (live N-1 -> N reshard)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory holding the shards (default: a temporary directory)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        metavar="N",
        help="decoded-cell LRU budget per shard in bytes (default 32 MiB; 0 disables)",
    )
    parser.add_argument(
        "--encoded-cache-bytes",
        type=int,
        default=DEFAULT_ENCODED_CACHE_BYTES,
        metavar="N",
        help="encoded-bytes LRU budget per shard: raw cell bytes kept below "
        "the decoded cache, so warm-ish hits skip backend I/O but still "
        "decode (default 0: disabled)",
    )
    parser.add_argument(
        "--admission",
        choices=("always", "second-touch"),
        default="always",
        help="cell-cache admission policy for both tiers: cache on first "
        "decode, or only cells seen at least twice (default always)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="serve fs-backend range reads as zero-copy memoryviews over "
        "mmap'ed blobs (ignored for the sqlite backend)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="coding engine for encodes and decodes (default: reference)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool size for CPU-bound decodes (default: executor default)",
    )
    hardening = parser.add_argument_group(
        "production hardening",
        "Admission control, per-client limits, deadlines and graceful "
        "drain.  Past --max-inflight the server sheds requests with 429 + "
        "Retry-After instead of queueing them; SIGTERM drains in-flight "
        "work within --drain-budget seconds and exits 0.",
    )
    hardening.add_argument(
        "--max-inflight",
        type=int,
        default=DEFAULT_MAX_INFLIGHT,
        metavar="N",
        help="high watermark on admitted in-flight requests; past it new "
        "requests are shed with 429 (default %d)" % DEFAULT_MAX_INFLIGHT,
    )
    hardening.add_argument(
        "--shed-low",
        type=int,
        default=None,
        metavar="N",
        help="low watermark at which shedding stops again "
        "(default: half of --max-inflight)",
    )
    hardening.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint attached to 429 responses (default 1.0)",
    )
    hardening.add_argument(
        "--max-client-connections",
        type=int,
        default=0,
        metavar="N",
        help="concurrent connections allowed per client host; "
        "0 disables the cap (default)",
    )
    hardening.add_argument(
        "--client-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="requests per second allowed per client host; "
        "0 disables rate limiting (default)",
    )
    hardening.add_argument(
        "--client-burst",
        type=float,
        default=None,
        metavar="B",
        help="token-bucket burst of the per-client rate limit "
        "(default: twice --client-rate)",
    )
    hardening.add_argument(
        "--deadline",
        type=float,
        default=DEFAULT_DEADLINE_SECONDS,
        metavar="SECONDS",
        help="per-request time budget (clients may tighten it with an "
        "x-deadline-ms header); 0 disables deadlines (default %.0f)"
        % DEFAULT_DEADLINE_SECONDS,
    )
    hardening.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="budget for a request's headers and body once the request "
        "line arrived; 0 disables (default 30)",
    )
    hardening.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="idle keep-alive connections are closed after this long; "
        "0 disables (default 300)",
    )
    hardening.add_argument(
        "--drain-budget",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds in-flight requests get to finish on SIGTERM "
        "before connections are closed (default 10)",
    )
    hardening.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="shard health-probe sweep interval; reads prefer replicas "
        "the prober believes up; 0 disables probing (default 2.0)",
    )
    hardening.add_argument(
        "--health-down-after",
        type=int,
        default=3,
        metavar="N",
        help="consecutive failures before a shard is marked down (default 3)",
    )
    hardening.add_argument(
        "--health-up-after",
        type=int,
        default=2,
        metavar="N",
        help="consecutive successes before a down shard is marked up "
        "again (default 2)",
    )
    return parser


def open_shards(
    root: Path,
    shards: int,
    backend: str,
    cache_bytes: int,
    engine: str,
    admission: str = "always",
    encoded_cache_bytes: int = DEFAULT_ENCODED_CACHE_BYTES,
    use_mmap: bool = False,
) -> List[ImageStore]:
    """Open ``shards`` stores under ``root`` with the standard shard layout."""
    stores: List[ImageStore] = []
    for index in range(shards):
        name = "shard-%02d" % index
        path = root / (name + ".sqlite") if backend == "sqlite" else root / name
        stores.append(
            ImageStore.open(
                path,
                use_mmap=use_mmap,
                cache_bytes=cache_bytes,
                engine=engine,
                cache_admission=admission,
                encoded_cache_bytes=encoded_cache_bytes,
            )
        )
    return stores


def shard_paths(root: Path, shards: int, backend: str) -> List[Path]:
    """The standard shard layout as paths (no stores opened)."""
    paths = []
    for index in range(shards):
        name = "shard-%02d" % index
        paths.append(root / (name + ".sqlite") if backend == "sqlite" else root / name)
    return paths


async def _serve_proc(args, root: Path) -> int:
    """The multi-process topology: shard workers behind a routing proxy."""
    from repro.serve.proxy import ProxyService, ReproProxy
    from repro.serve.worker import WorkerSpec, WorkerSupervisor

    specs = [
        WorkerSpec(
            shard_name="shard-%02d" % index,
            store_path=path,
            backend=args.backend,
            cache_bytes=args.cache_bytes,
            encoded_cache_bytes=args.encoded_cache_bytes,
            admission=args.admission,
            use_mmap=args.mmap,
            engine=args.engine,
            threads=args.workers,
            max_inflight=args.max_inflight,
            deadline=args.deadline,
            read_timeout=args.read_timeout,
            idle_timeout=args.idle_timeout,
            drain_budget=args.drain_budget,
        )
        for index, path in enumerate(shard_paths(root, args.shards, args.backend))
    ]
    supervisor = WorkerSupervisor(
        specs, workers_per_shard=args.workers_per_shard
    ).start()
    service = ProxyService(
        supervisor,
        replication=args.replication,
        engine=args.engine,
        max_workers=args.workers,
        max_inflight=args.max_inflight,
        shed_low=args.shed_low,
        retry_after=args.retry_after,
        max_connections_per_client=args.max_client_connections,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        default_deadline=args.deadline,
        read_timeout=args.read_timeout if args.read_timeout > 0 else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        drain_budget=args.drain_budget,
        health_down_after=args.health_down_after,
        health_up_after=args.health_up_after,
    )
    proxy = ReproProxy(service, args.host, args.port)
    loop = asyncio.get_running_loop()
    sigterm = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, sigterm.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
        pass
    try:
        await proxy.start()
        print(
            "repro-serve: listening on http://%s:%d (%d shard(s), %s backend)"
            % (args.host, proxy.port, args.shards, args.backend),
            flush=True,
        )
        print(
            "repro-serve: proxy over %d worker process(es) (%d per shard)"
            % (args.shards * args.workers_per_shard, args.workers_per_shard),
            file=sys.stderr,
            flush=True,
        )
        print("repro-serve: shards under %s" % root, file=sys.stderr, flush=True)
        serving = asyncio.ensure_future(proxy.serve_forever())
        waiting = asyncio.ensure_future(sigterm.wait())
        await asyncio.wait({serving, waiting}, return_when=asyncio.FIRST_COMPLETED)
        if sigterm.is_set():
            print(
                "repro-serve: SIGTERM, draining proxy then workers "
                "(budget %.1fs)" % service.drain_budget,
                file=sys.stderr,
                flush=True,
            )
            drained = await proxy.drain()
            print(
                "repro-serve: drained %s"
                % ("cleanly" if drained else "with requests still in flight"),
                file=sys.stderr,
                flush=True,
            )
        for task in (serving, waiting):
            task.cancel()
        await asyncio.gather(serving, waiting, return_exceptions=True)
    except asyncio.CancelledError:  # pragma: no cover - cancellation race
        pass
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
            pass
        await proxy.stop()
        # close() ends with the worker SIGTERM cascade: each worker drains
        # its own in-flight work within its --drain-budget before exiting.
        service.close()
    return 0


async def _serve(args, root: Path) -> int:
    if args.topology == "proc":
        return await _serve_proc(args, root)
    stores = open_shards(
        root,
        args.shards,
        args.backend,
        args.cache_bytes,
        args.engine,
        args.admission,
        encoded_cache_bytes=args.encoded_cache_bytes,
        use_mmap=args.mmap,
    )
    joining_store = None
    joining_name = None
    if args.reshard:
        # The highest-numbered shard is the one joining: boot the service
        # over the old membership and add it through the live-reshard path
        # so reads consult both owner sets while keys migrate.
        joining_store = stores.pop()
        joining_name = "shard-%02d" % (args.shards - 1)
    service = ImageService(
        stores,
        max_workers=args.workers,
        max_inflight=args.max_inflight,
        shed_low=args.shed_low,
        retry_after=args.retry_after,
        max_connections_per_client=args.max_client_connections,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        default_deadline=args.deadline,
        read_timeout=args.read_timeout if args.read_timeout > 0 else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        drain_budget=args.drain_budget,
        replication=args.replication,
        health_down_after=args.health_down_after,
        health_up_after=args.health_up_after,
    )
    prober = None
    if args.health_interval > 0:
        prober = HealthProber(
            service.router, service.health, interval=args.health_interval
        ).start()
    if joining_store is not None:
        resharder = service.begin_reshard(joining_store, joining_name)
        moved = len(resharder.moved_keys())
        resharder.start()
        print(
            "repro-serve: live reshard onto %s started (%d key(s) to move)"
            % (joining_name, moved),
            file=sys.stderr,
            flush=True,
        )
    server = ReproServer(service, args.host, args.port)
    loop = asyncio.get_running_loop()
    sigterm = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, sigterm.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
        pass
    try:
        await server.start()
        print(
            "repro-serve: listening on http://%s:%d (%d shard(s), %s backend)"
            % (args.host, server.port, args.shards, args.backend),
            flush=True,
        )
        print("repro-serve: shards under %s" % root, file=sys.stderr, flush=True)
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(sigterm.wait())
        await asyncio.wait({serving, waiting}, return_when=asyncio.FIRST_COMPLETED)
        if sigterm.is_set():
            print(
                "repro-serve: SIGTERM, draining (budget %.1fs)"
                % service.drain_budget,
                file=sys.stderr,
                flush=True,
            )
            drained = await server.drain()
            print(
                "repro-serve: drained %s"
                % ("cleanly" if drained else "with requests still in flight"),
                file=sys.stderr,
                flush=True,
            )
        for task in (serving, waiting):
            task.cancel()
        await asyncio.gather(serving, waiting, return_exceptions=True)
    except asyncio.CancelledError:  # pragma: no cover - cancellation race
        pass
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
            pass
        if prober is not None:
            prober.stop()
        await server.stop()
        service.close()
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-serve``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.cache_bytes < 0:
        parser.error("--cache-bytes must be >= 0")
    if args.encoded_cache_bytes < 0:
        parser.error("--encoded-cache-bytes must be >= 0")
    if args.port < 0 or args.port > 65535:
        parser.error("--port must be in [0, 65535]")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.max_inflight < 1:
        parser.error("--max-inflight must be at least 1")
    if args.shed_low is not None and not 0 < args.shed_low <= args.max_inflight:
        parser.error("--shed-low must be in [1, --max-inflight]")
    if args.retry_after <= 0:
        parser.error("--retry-after must be positive")
    if args.max_client_connections < 0:
        parser.error("--max-client-connections must be >= 0")
    if args.client_rate < 0:
        parser.error("--client-rate must be >= 0")
    if args.client_burst is not None and args.client_burst < 1:
        parser.error("--client-burst must be >= 1")
    if args.deadline < 0:
        parser.error("--deadline must be >= 0")
    if args.read_timeout < 0 or args.idle_timeout < 0:
        parser.error("--read-timeout and --idle-timeout must be >= 0")
    if args.drain_budget < 0:
        parser.error("--drain-budget must be >= 0")
    if args.replication < 1:
        parser.error("--replication must be at least 1")
    if args.reshard and args.shards < 2:
        parser.error("--reshard needs --shards >= 2 (the last shard is the joining one)")
    if args.workers_per_shard < 1:
        parser.error("--workers-per-shard must be at least 1")
    if args.topology == "proc" and args.reshard:
        parser.error(
            "--reshard is not supported under --topology proc yet; run the "
            "reshard with --topology thread, then restart in proc mode"
        )
    if args.health_interval < 0:
        parser.error("--health-interval must be >= 0")
    if args.health_down_after < 1 or args.health_up_after < 1:
        parser.error("--health-down-after and --health-up-after must be at least 1")

    try:
        if args.root is None:
            with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
                return asyncio.run(_serve(args, Path(tmp)))
        root = Path(args.root)
        root.mkdir(parents=True, exist_ok=True)
        return asyncio.run(_serve(args, root))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", file=sys.stderr)
        return 0
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
