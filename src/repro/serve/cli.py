"""The ``repro-serve`` console script.

Boots the asyncio serving tier over N freshly opened (or pre-existing)
store shards::

    repro-serve --shards 2 --backend fs --root /var/lib/repro --port 8037

prints one machine-readable line once the socket is bound::

    repro-serve: listening on http://127.0.0.1:8037 (2 shard(s), fs backend)

and serves until interrupted.  ``--port 0`` binds an ephemeral port (the
printed line carries the real one — the CI smoke job parses it), and
without ``--root`` the shards live in a throwaway temporary directory, so
``repro-serve`` with no arguments is a complete self-contained demo
server.

Shard layout under ``--root``: ``shard-00``, ``shard-01``, … — directories
for the ``fs`` backend, ``shard-NN.sqlite`` files for ``sqlite``.  Reusing
the same root re-opens the same shards with the same names, and since
routing hashes shard *names*, keys keep their placement across restarts.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.cli import _print_error, add_version_argument
from repro.core.interface import ENGINES
from repro.exceptions import ReproError
from repro.serve.app import ImageService, ReproServer
from repro.store.cache import DEFAULT_CACHE_BYTES
from repro.store.store import ImageStore

__all__ = ["serve_main", "build_parser", "open_shards"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve stored images over HTTP: sharded routing, "
        "request coalescing, cached random access.",
    )
    add_version_argument(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=8037,
        help="TCP port; 0 binds an ephemeral port (default 8037)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="number of store shards keys are routed across (default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=("fs", "sqlite"),
        default="fs",
        help="blob storage of every shard (default fs)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory holding the shards (default: a temporary directory)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        metavar="N",
        help="decoded-cell LRU budget per shard in bytes (default 32 MiB; 0 disables)",
    )
    parser.add_argument(
        "--admission",
        choices=("always", "second-touch"),
        default="always",
        help="cell-cache admission policy: cache on first decode, or only "
        "cells seen at least twice (default always)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="reference",
        help="coding engine for encodes and decodes (default: reference)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool size for CPU-bound decodes (default: executor default)",
    )
    return parser


def open_shards(
    root: Path,
    shards: int,
    backend: str,
    cache_bytes: int,
    engine: str,
    admission: str = "always",
) -> List[ImageStore]:
    """Open ``shards`` stores under ``root`` with the standard shard layout."""
    stores: List[ImageStore] = []
    for index in range(shards):
        name = "shard-%02d" % index
        path = root / (name + ".sqlite") if backend == "sqlite" else root / name
        stores.append(
            ImageStore.open(
                path, cache_bytes=cache_bytes, engine=engine, cache_admission=admission
            )
        )
    return stores


async def _serve(args, root: Path) -> int:
    stores = open_shards(
        root, args.shards, args.backend, args.cache_bytes, args.engine, args.admission
    )
    service = ImageService(stores, max_workers=args.workers)
    server = ReproServer(service, args.host, args.port)
    try:
        await server.start()
        print(
            "repro-serve: listening on http://%s:%d (%d shard(s), %s backend)"
            % (args.host, server.port, args.shards, args.backend),
            flush=True,
        )
        print("repro-serve: shards under %s" % root, file=sys.stderr, flush=True)
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - cancellation race
        pass
    finally:
        await server.stop()
        service.close()
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-serve``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.cache_bytes < 0:
        parser.error("--cache-bytes must be >= 0")
    if args.port < 0 or args.port > 65535:
        parser.error("--port must be in [0, 65535]")
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be at least 1")

    try:
        if args.root is None:
            with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
                return asyncio.run(_serve(args, Path(tmp)))
        root = Path(args.root)
        root.mkdir(parents=True, exist_ok=True)
        return asyncio.run(_serve(args, root))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down", file=sys.stderr)
        return 0
    except (ReproError, OSError) as error:
        _print_error(error)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve_main())
