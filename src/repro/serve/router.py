"""Shard routing: rendezvous hashing of content keys over image stores.

The service fronts N independent :class:`~repro.store.store.ImageStore`
backends.  Placement uses **rendezvous (highest-random-weight) hashing**:
every (shard, key) pair is scored with SHA-256 and the key lives on the
highest-scoring shard.  Compared to modulo placement this keeps the map
stable under resharding — adding one shard to N only moves the keys whose
new top score is the new shard, an expected ``1/(N+1)`` fraction, instead
of reshuffling almost everything.

Two generalisations of the single-owner scheme live here:

* **Replication factor R** — :meth:`StoreRouter.shards_for` returns the
  top-R rendezvous winners in score order.  Writes go to every owner;
  reads try owners in score order and fail over to the next replica when
  one is down (the failover loop itself lives in
  :class:`~repro.serve.app.ImageService`).
* **Joining membership** — during a live reshard
  (:mod:`repro.serve.reshard`) the router carries one *joining* shard:
  :meth:`owners` returns the owner set under the **union** of the old and
  new memberships, so a key mid-migration is reachable through whichever
  owner currently holds it, and a write lands everywhere it will be
  looked for.  :meth:`complete_reshard` commits the new membership once
  the moved keys have been copied.

Image keys are already SHA-256 content hashes, so scores distribute
uniformly and shards stay balanced without virtual nodes.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConfigError
from repro.store.store import ImageStore

__all__ = ["StoreRouter", "rendezvous_score", "rendezvous_shard"]


def rendezvous_score(shard_name: str, key: str) -> int:
    """The 64-bit rendezvous weight of ``key`` on ``shard_name``."""
    digest = hashlib.sha256(("%s|%s" % (shard_name, key)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_shard(shard_names: Sequence[str], key: str) -> int:
    """Index of the winning shard for ``key`` (ties broken by name)."""
    if not shard_names:
        raise ConfigError("rendezvous routing needs at least one shard")
    return max(
        range(len(shard_names)),
        key=lambda index: (rendezvous_score(shard_names[index], key), shard_names[index]),
    )


def _ranked(shard_names: Sequence[str], key: str) -> List[str]:
    """Shard names ordered by descending rendezvous score (ties by name,
    consistent with :func:`rendezvous_shard`'s winner)."""
    return sorted(
        shard_names,
        key=lambda name: (rendezvous_score(name, key), name),
        reverse=True,
    )


class StoreRouter:
    """Route content keys across a set of named image-store shards.

    Parameters
    ----------
    stores:
        One opened :class:`ImageStore` per shard.
    names:
        Stable shard names (they are the hash inputs, so renaming a shard
        moves its keys).  Default: ``shard-00`` .. ``shard-NN``.
    replication:
        How many rendezvous winners own each key.  ``1`` (default) is the
        classic single-owner layout; with ``R > 1`` writes fan out to the
        top-R shards and reads can fail over between them.  A factor
        larger than the shard count degrades gracefully to "every shard".

    Membership is mutable only through :meth:`begin_reshard` /
    :meth:`complete_reshard`; every query method snapshots the membership
    under the router lock, so concurrent reads observe a consistent view.
    """

    def __init__(
        self,
        stores: Sequence[ImageStore],
        names: Sequence[str] = (),
        replication: int = 1,
    ) -> None:
        if not stores:
            raise ConfigError("a router needs at least one store shard")
        if not names:
            names = ["shard-%02d" % index for index in range(len(stores))]
        if len(names) != len(stores):
            raise ConfigError(
                "got %d shard name(s) for %d store(s)" % (len(names), len(stores))
            )
        if len(set(names)) != len(names):
            raise ConfigError("shard names must be unique, got %r" % (list(names),))
        if replication < 1:
            raise ConfigError("replication factor must be >= 1, got %d" % replication)
        self._stores: List[ImageStore] = list(stores)
        self._names: List[str] = list(names)
        self._replication = replication
        self._lock = threading.Lock()
        #: Name of the shard currently joining through a live reshard.
        self._joining: Optional[str] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)

    def __iter__(self) -> Iterator[ImageStore]:
        return iter(self.stores)

    @property
    def names(self) -> List[str]:
        with self._lock:
            return list(self._names)

    @property
    def stores(self) -> List[ImageStore]:
        with self._lock:
            return list(self._stores)

    @property
    def replication(self) -> int:
        """The configured replication factor (may exceed the shard count)."""
        return self._replication

    @property
    def joining(self) -> Optional[str]:
        """Name of the shard a live reshard is migrating onto, if any."""
        with self._lock:
            return self._joining

    def _snapshot(self) -> Tuple[List[str], Dict[str, ImageStore], Optional[str]]:
        with self._lock:
            return (
                list(self._names),
                dict(zip(self._names, self._stores)),
                self._joining,
            )

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #

    def shards_for(self, key: str, r: Optional[int] = None) -> List[int]:
        """Indices of the top-``r`` rendezvous winners for ``key``, best first.

        ``r`` defaults to the router's replication factor and is clamped
        to the shard count.  Index 0 is the *primary* — the shard
        :meth:`shard_index` names.
        """
        if r is not None and r < 1:
            raise ConfigError("owner count must be >= 1, got %d" % r)
        names, _, _ = self._snapshot()
        count = min(self._replication if r is None else r, len(names))
        index_of = {name: index for index, name in enumerate(names)}
        return [index_of[name] for name in _ranked(names, key)[:count]]

    def shard_index(self, key: str) -> int:
        """The primary shard index ``key`` routes to."""
        names, _, _ = self._snapshot()
        return rendezvous_shard(names, key)

    def shard_name(self, key: str) -> str:
        names, _, _ = self._snapshot()
        return names[rendezvous_shard(names, key)]

    def store_for(self, key: str) -> ImageStore:
        """The primary :class:`ImageStore` for ``key`` (single-owner view)."""
        names, by_name, _ = self._snapshot()
        return by_name[names[rendezvous_shard(names, key)]]

    def owners(self, key: str) -> List[Tuple[str, ImageStore]]:
        """Every (name, store) that owns ``key``, best score first.

        Under stable membership this is the top-R rendezvous winners.
        While a reshard is in flight it is the **union** of the owners
        under the old membership (without the joining shard) and the new
        one (with it) — a key mid-migration is reachable through whichever
        owner currently holds its bytes, and a write must land everywhere
        a reader may look.
        """
        names, by_name, joining = self._snapshot()
        owner_names: Set[str] = set(
            _ranked(names, key)[: min(self._replication, len(names))]
        )
        if joining is not None:
            previous = [name for name in names if name != joining]
            if previous:
                owner_names.update(
                    _ranked(previous, key)[: min(self._replication, len(previous))]
                )
        return [
            (name, by_name[name]) for name in _ranked(names, key) if name in owner_names
        ]

    # ------------------------------------------------------------------ #
    # live resharding membership
    # ------------------------------------------------------------------ #

    def begin_reshard(self, store: ImageStore, name: str) -> None:
        """Add ``store`` as a joining shard (N -> N+1 live reshard).

        Placement immediately includes the new shard, but until
        :meth:`complete_reshard` the old owners stay in every key's
        :meth:`owners` set, so reads keep succeeding while
        :mod:`repro.serve.reshard` copies the moved keys over.
        """
        with self._lock:
            if self._joining is not None:
                raise ConfigError(
                    "a reshard onto %r is already in progress" % self._joining
                )
            if name in self._names:
                raise ConfigError("shard name %r is already in the membership" % name)
            self._stores.append(store)
            self._names.append(name)
            self._joining = name

    def complete_reshard(self) -> str:
        """Commit the joining shard as a full member; returns its name."""
        with self._lock:
            if self._joining is None:
                raise ConfigError("no reshard is in progress")
            name = self._joining
            self._joining = None
            return name

    # ------------------------------------------------------------------ #
    # enumeration and diagnostics
    # ------------------------------------------------------------------ #

    def keys(self) -> Iterator[str]:
        """Every distinct key stored across all shards.

        Replication and mid-migration resharding legitimately place the
        same content key on several shards; the stream is deduplicated so
        consumers (GC sweeps, audits) see each key exactly once.
        """
        seen: Set[str] = set()
        for store in self.stores:
            for key in store.keys():
                if key not in seen:
                    seen.add(key)
                    yield key

    def stats(self) -> List[Dict[str, object]]:
        """Per-shard backend + cache counters, routing name included."""
        names, by_name, joining = self._snapshot()
        return [
            dict(by_name[name].stats(), name=name, joining=(name == joining))
            for name in names
        ]

    def close(self) -> None:
        for store in self.stores:
            store.close()
