"""Shard routing: rendezvous hashing of content keys over image stores.

The service fronts N independent :class:`~repro.store.store.ImageStore`
backends.  Placement uses **rendezvous (highest-random-weight) hashing**:
every (shard, key) pair is scored with SHA-256 and the key lives on the
highest-scoring shard.  Compared to modulo placement this keeps the map
stable under resharding — adding one shard to N only moves the keys whose
new top score is the new shard, an expected ``1/(N+1)`` fraction, instead
of reshuffling almost everything.

Image keys are already SHA-256 content hashes, so scores distribute
uniformly and shards stay balanced without virtual nodes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Sequence

from repro.exceptions import ConfigError
from repro.store.store import ImageStore

__all__ = ["StoreRouter", "rendezvous_score", "rendezvous_shard"]


def rendezvous_score(shard_name: str, key: str) -> int:
    """The 64-bit rendezvous weight of ``key`` on ``shard_name``."""
    digest = hashlib.sha256(("%s|%s" % (shard_name, key)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_shard(shard_names: Sequence[str], key: str) -> int:
    """Index of the winning shard for ``key`` (ties broken by name)."""
    if not shard_names:
        raise ConfigError("rendezvous routing needs at least one shard")
    return max(
        range(len(shard_names)),
        key=lambda index: (rendezvous_score(shard_names[index], key), shard_names[index]),
    )


class StoreRouter:
    """Route content keys across a fixed set of named image-store shards.

    Parameters
    ----------
    stores:
        One opened :class:`ImageStore` per shard.
    names:
        Stable shard names (they are the hash inputs, so renaming a shard
        moves its keys).  Default: ``shard-00`` .. ``shard-NN``.
    """

    def __init__(
        self, stores: Sequence[ImageStore], names: Sequence[str] = ()
    ) -> None:
        if not stores:
            raise ConfigError("a router needs at least one store shard")
        if not names:
            names = ["shard-%02d" % index for index in range(len(stores))]
        if len(names) != len(stores):
            raise ConfigError(
                "got %d shard name(s) for %d store(s)" % (len(names), len(stores))
            )
        if len(set(names)) != len(names):
            raise ConfigError("shard names must be unique, got %r" % (list(names),))
        self._stores: List[ImageStore] = list(stores)
        self._names: List[str] = list(names)

    def __len__(self) -> int:
        return len(self._stores)

    def __iter__(self) -> Iterator[ImageStore]:
        return iter(self._stores)

    @property
    def names(self) -> List[str]:
        return list(self._names)

    @property
    def stores(self) -> List[ImageStore]:
        return list(self._stores)

    def shard_index(self, key: str) -> int:
        """The shard index ``key`` routes to."""
        return rendezvous_shard(self._names, key)

    def shard_name(self, key: str) -> str:
        return self._names[self.shard_index(key)]

    def store_for(self, key: str) -> ImageStore:
        """The :class:`ImageStore` holding (or destined to hold) ``key``."""
        return self._stores[self.shard_index(key)]

    def keys(self) -> Iterator[str]:
        """Every key stored across all shards."""
        for store in self._stores:
            for key in store.keys():
                yield key

    def stats(self) -> List[Dict[str, object]]:
        """Per-shard backend + cache counters, routing name included."""
        return [
            dict(store.stats(), name=name)
            for name, store in zip(self._names, self._stores)
        ]

    def close(self) -> None:
        for store in self._stores:
            store.close()
