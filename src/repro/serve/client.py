"""Pure-stdlib client of the ``repro-serve`` HTTP API.

:class:`ServeClient` wraps :mod:`http.client` — no third-party HTTP stack —
and converts wire payloads back into the package's image types: Netpbm
bodies become :class:`~repro.imaging.image.GrayImage` /
:class:`~repro.imaging.planar.PlanarImage` via the same readers the CLI
uses, so a value fetched over the network compares equal to one decoded
in-process.  It is the client the test-suite, the load benchmark and the
CI smoke job all drive; keeping it in-tree means the protocol has exactly
one producer and one consumer to keep honest.

The streaming endpoints (``?stream=1``) are consumed through the same
connection: :meth:`ServeClient.get_region_stream` de-chunks a streamed
region incrementally (reporting time-to-first-byte alongside the total),
and :meth:`ServeClient.iter_regions` yields batch regions as their NDJSON
lines arrive.

Connections are persistent (HTTP/1.1 keep-alive) with one transparent
reconnect **for idempotent GETs only** — a mutating request whose socket
died may already have been applied, so it raises instead of replaying —
keeping closed-loop benchmark clients measuring request latency, not
TCP handshakes.  Non-2xx responses raise
:class:`~repro.exceptions.ServeError` carrying the HTTP status and the
server's error message.

The client cooperates with the server's production-hardening layer:

* ``deadline_ms`` attaches an ``x-deadline-ms`` header to every request,
  tightening the server's own per-request budget;
* ``shed_retries`` retries requests the server shed with ``429``,
  backing off exponentially and honouring the server's ``Retry-After``
  hint (capped at ``max_backoff`` so a load generator cannot be parked
  arbitrarily long by a large hint).  A request still shed after the
  retry budget raises :class:`~repro.exceptions.ServeError` with status
  429, which load generators count as shed load, not failure.
"""

from __future__ import annotations

import base64
import http.client
import io
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union
from urllib.parse import quote

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    RemoteBadRequestError,
    RemoteNotFoundError,
    ServeError,
    ServerDrainingError,
    UpstreamUnhealthyError,
)
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import read_image

__all__ = ["ServeClient", "error_from_envelope"]

_Image = Union[GrayImage, PlanarImage]

#: Envelope code → the typed exception a client raises for it.  Codes a
#: newer server might add fall back on plain :class:`ServeError`, so an
#: older client degrades to the pre-envelope behaviour instead of
#: crashing on an unknown code.
_CODE_ERRORS = {
    "bad_request": RemoteBadRequestError,
    "method_not_allowed": RemoteBadRequestError,
    "protocol": RemoteBadRequestError,
    "not_found": RemoteNotFoundError,
    "draining": ServerDrainingError,
    "upstream_unhealthy": UpstreamUnhealthyError,
}


def error_from_envelope(status: int, payload: bytes) -> ServeError:
    """The typed exception for one non-2xx response.

    Dispatches on the structured envelope's ``code`` field — never on
    the status line or message text.  ``shed`` and ``deadline`` map onto
    the existing :class:`OverloadedError` / :class:`DeadlineExceededError`
    (both already ``ServeError`` subclasses), so callers catching those
    semantics see no difference between a local and a remote raise.
    """
    message = "HTTP %d" % status
    code = ""
    try:
        document = json.loads(payload.decode("utf-8"))
        message = "%s: %s" % (message, document.get("error", ""))
        code = document.get("code", "")
    except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
        pass
    if code == "shed":
        return OverloadedError(message)
    if code == "deadline":
        return DeadlineExceededError(message)
    cls = _CODE_ERRORS.get(code)
    if cls is not None:
        return cls(message, status=status)
    return ServeError(message, status=status)


class ServeClient:
    """Typed access to every endpoint of one ``repro-serve`` instance.

    Pure stdlib (``http.client``); image responses come back as real
    :class:`~repro.imaging.image.GrayImage` /
    :class:`~repro.imaging.planar.PlanarImage` values and JSON endpoints
    as dicts.  Server-side errors surface as
    :class:`~repro.exceptions.ServeError` carrying the HTTP status.

    Not thread-safe: one instance owns one keep-alive connection — give
    each thread its own client (the load harnesses do exactly that).

    ``deadline_ms`` attaches an ``x-deadline-ms`` header to every request
    so the server abandons work the client will no longer wait for;
    ``shed_retries`` retries 429 responses with exponential backoff,
    honouring the server's ``Retry-After`` hint (observed sheds are
    counted in :attr:`shed_seen` either way).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        deadline_ms: Optional[int] = None,
        shed_retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.deadline_ms = deadline_ms
        self.shed_retries = shed_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        #: 429 responses observed (including ones a retry then cleared).
        self.shed_seen = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/octet-stream",
    ) -> Tuple[int, bytes, str]:
        """One request, with up to ``shed_retries`` retries of 429 sheds."""
        headers = {}
        if body is not None:
            headers["Content-Type"] = content_type
        if self.deadline_ms is not None:
            headers["x-deadline-ms"] = "%d" % self.deadline_ms
        for shed_attempt in range(self.shed_retries + 1):
            status, payload, kind, retry_after = self._round_trip(
                method, path, body, headers
            )
            if status != 429:
                return status, payload, kind
            self.shed_seen += 1
            if shed_attempt == self.shed_retries:
                return status, payload, kind
            delay = self.backoff * (2.0**shed_attempt)
            if retry_after is not None:
                try:
                    delay = max(delay, float(retry_after))
                except ValueError:
                    pass
            time.sleep(min(delay, self.max_backoff))
        raise ServeError("unreachable shed-retry state")  # pragma: no cover

    def _round_trip(
        self, method: str, path: str, body: Optional[bytes], headers: Dict[str, str]
    ) -> Tuple[int, bytes, str, Optional[str]]:
        """One round trip; reconnects once if the kept-alive socket died.

        Only idempotent GETs are replayed transparently: a mutating
        PUT/POST/DELETE whose socket died may already have been applied
        server-side (a replayed ``DELETE ?ttl=`` would silently re-stamp
        a fresh purge horizon), so those surface a :class:`ServeError`
        and let the caller decide.
        """
        replayable = method == "GET"
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=body, headers=headers)
                response = self._connection.getresponse()
                payload = response.read()
                if response.getheader("Connection", "").lower() == "close":
                    # The server asked to close (shed, drain, error): a
                    # kept-alive follow-up would hit a dead socket.
                    self.close()
                return (
                    response.status,
                    payload,
                    response.getheader("Content-Type", ""),
                    response.getheader("Retry-After"),
                )
            except (http.client.HTTPException, ConnectionError, BrokenPipeError) as error:
                # A keep-alive peer may close an idle connection between
                # requests; retry an idempotent request exactly once on a
                # fresh socket.
                self.close()
                if not replayable:
                    raise ServeError(
                        "connection died during %s %s — the request may or may "
                        "not have been applied; not replaying a mutating method"
                        % (method, path)
                    ) from error
                if attempt:
                    raise
        raise ServeError("unreachable retry state")  # pragma: no cover

    def _open_stream(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> http.client.HTTPResponse:
        """Issue one request and return the live response without reading it.

        The streaming endpoints read the body incrementally —
        ``http.client`` de-chunks transparently, so each ``read1`` returns
        data as soon as a chunk arrives on the wire.  Reconnects once on a
        dead keep-alive socket for GETs only (same replay rule as
        :meth:`_round_trip`); shed 429s are not retried here — the caller
        sees the :class:`ServeError` directly.
        """
        headers: Dict[str, str] = {}
        if body is not None:
            headers["Content-Type"] = content_type
        if self.deadline_ms is not None:
            headers["x-deadline-ms"] = "%d" % self.deadline_ms
        replayable = method == "GET"
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=body, headers=headers)
                return self._connection.getresponse()
            except (http.client.HTTPException, ConnectionError, BrokenPipeError) as error:
                self.close()
                if not replayable:
                    raise ServeError(
                        "connection died during %s %s — the request may or may "
                        "not have been applied; not replaying a mutating method"
                        % (method, path)
                    ) from error
                if attempt:
                    raise
        raise ServeError("unreachable retry state")  # pragma: no cover

    def _maybe_close(self, response: http.client.HTTPResponse) -> None:
        """Honour a server-side ``Connection: close`` after a full read."""
        if response.getheader("Connection", "").lower() == "close":
            self.close()

    def _json(self, status: int, payload: bytes) -> Dict[str, Any]:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServeError(
                "undecodable JSON payload (HTTP %d)" % status, status=status
            ) from None

    def _expect(
        self, expected: int, status: int, payload: bytes
    ) -> None:
        if status != expected:
            raise error_from_envelope(status, payload)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def put_image(
        self,
        data: bytes,
        stripes: Optional[int] = None,
        plane_delta: bool = False,
    ) -> Dict[str, Any]:
        """Store a Netpbm image or ``.rplc`` container; returns the routing."""
        query = []
        if stripes is not None:
            query.append("stripes=%d" % stripes)
        if plane_delta:
            query.append("plane_delta=1")
        path = "/images" + ("?" + "&".join(query) if query else "")
        status, payload, _ = self._request("PUT", path, body=data)
        self._expect(201, status, payload)
        return self._json(status, payload)

    def get_image(self, key: str) -> _Image:
        status, payload, _ = self._request("GET", "/images/%s" % key)
        self._expect(200, status, payload)
        return read_image(io.BytesIO(payload))

    def get_plane(self, key: str, plane: int) -> GrayImage:
        status, payload, _ = self._request("GET", "/images/%s/plane/%d" % (key, plane))
        self._expect(200, status, payload)
        image = read_image(io.BytesIO(payload))
        if not isinstance(image, GrayImage):
            # Never `assert` on wire data — it vanishes under `python -O`.
            raise ServeError(
                "plane endpoint returned a %s, expected a single-plane image"
                % type(image).__name__
            )
        return image

    def get_region(self, key: str, start: int, stop: int) -> _Image:
        status, payload, _ = self._request(
            "GET", "/images/%s/region/%d-%d" % (key, start, stop)
        )
        self._expect(200, status, payload)
        return read_image(io.BytesIO(payload))

    def get_region_stream(
        self, key: str, start: int, stop: int
    ) -> Tuple[_Image, Dict[str, float]]:
        """Fetch a region via the chunked streaming endpoint.

        Returns the decoded image plus wire timings in milliseconds:
        ``ttfb_ms`` — request start to the first body bytes (the streamed
        Netpbm header, which the server emits before any cell decodes
        finish) — and ``total_ms``, request start to the last byte.  The
        reassembled body is byte-identical to the buffered endpoint's
        response.  A server-side mid-stream abort (chunked body truncated
        before the terminating chunk) raises :class:`ServeError`.
        """
        started = time.perf_counter()
        response = self._open_stream(
            "GET", "/images/%s/region/%d-%d?stream=1" % (key, start, stop)
        )
        if response.status != 200:
            payload = response.read()
            self._maybe_close(response)
            self._expect(200, response.status, payload)
        chunks: List[bytes] = []
        ttfb: Optional[float] = None
        try:
            while True:
                piece = response.read1(65536)
                if not piece:
                    break
                if ttfb is None:
                    ttfb = time.perf_counter() - started
                chunks.append(piece)
        except (http.client.IncompleteRead, ConnectionError) as error:
            self.close()
            raise ServeError(
                "streamed region %s/%d-%d was truncated mid-stream"
                % (key, start, stop)
            ) from error
        total = time.perf_counter() - started
        self._maybe_close(response)
        image = read_image(io.BytesIO(b"".join(chunks)))
        return image, {
            "ttfb_ms": 1e3 * (ttfb if ttfb is not None else total),
            "total_ms": 1e3 * total,
        }

    def iter_regions(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> Iterator[Tuple[Dict[str, Any], _Image]]:
        """Stream a batch of regions, yielding each as its NDJSON line lands.

        Yields ``(entry, image)`` pairs in request order; ``entry`` is the
        same JSON object the buffered batch endpoint packs into
        ``regions[]``, with the image key inlined.  The generator owns the
        connection until exhausted or closed — issuing other requests on
        this client mid-stream would interleave protocol state, so consume
        or abandon (``close()``) it first.
        """
        body = json.dumps({"ranges": [[a, b] for a, b in ranges]}).encode("utf-8")
        response = self._open_stream(
            "POST", "/images/%s/regions?stream=1" % key, body=body
        )
        if response.status != 200:
            payload = response.read()
            self._maybe_close(response)
            self._expect(200, response.status, payload)
        buffered = b""
        completed = False
        try:
            while True:
                try:
                    piece = response.read1(65536)
                except (http.client.IncompleteRead, ConnectionError) as error:
                    raise ServeError(
                        "streamed regions response for %r was truncated mid-stream"
                        % key
                    ) from error
                if not piece:
                    break
                buffered += piece
                while True:
                    line, sep, rest = buffered.partition(b"\n")
                    if not sep:
                        break
                    buffered = rest
                    entry = json.loads(line.decode("utf-8"))
                    raw = base64.b64decode(entry["netpbm_base64"])
                    yield entry, read_image(io.BytesIO(raw))
            if buffered.strip():
                raise ServeError("streamed regions response for %r ended mid-line" % key)
            completed = True
        finally:
            if completed:
                self._maybe_close(response)
            else:
                # An abandoned or truncated stream leaves body bytes on the
                # socket; the connection cannot carry another request.
                self.close()

    def get_regions(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> List[_Image]:
        """Fetch a batch of stripe ranges in one round trip."""
        body = json.dumps({"ranges": [[a, b] for a, b in ranges]}).encode("utf-8")
        status, payload, _ = self._request(
            "POST", "/images/%s/regions" % key, body=body, content_type="application/json"
        )
        self._expect(200, status, payload)
        document = self._json(status, payload)
        images: List[_Image] = []
        for region in document.get("regions", []):
            raw = base64.b64decode(region["netpbm_base64"])
            images.append(read_image(io.BytesIO(raw)))
        return images

    def catalog(
        self,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
        tag: Optional[str] = None,
        planes: Optional[int] = None,
        engine: Optional[str] = None,
        include_deleted: bool = False,
        deleted_only: bool = False,
    ) -> Dict[str, Any]:
        """The merged shard catalog: ``{"entries": [...], "total": N, ...}``.

        ``tag`` is ``KEY`` (presence) or ``KEY=VALUE`` (exact match);
        the other filters mirror ``repro-store ls``.
        """
        query = []
        if limit is not None:
            query.append("limit=%d" % limit)
        if offset is not None:
            query.append("offset=%d" % offset)
        if tag is not None:
            query.append("tag=%s" % quote(tag, safe=""))
        if planes is not None:
            query.append("planes=%d" % planes)
        if engine is not None:
            query.append("engine=%s" % quote(engine, safe=""))
        if include_deleted:
            query.append("include_deleted=1")
        if deleted_only:
            query.append("deleted_only=1")
        path = "/catalog" + ("?" + "&".join(query) if query else "")
        status, payload, _ = self._request("GET", path)
        self._expect(200, status, payload)
        return self._json(status, payload)

    def delete_image(self, key: str, ttl: Optional[float] = None) -> Dict[str, Any]:
        """Soft-delete ``key`` (tombstone + TTL); returns the purge horizon."""
        path = "/images/%s" % key
        if ttl is not None:
            path += "?ttl=%s" % ttl
        status, payload, _ = self._request("DELETE", path)
        self._expect(200, status, payload)
        return self._json(status, payload)

    def healthz(self) -> Dict[str, Any]:
        status, payload, _ = self._request("GET", "/healthz")
        self._expect(200, status, payload)
        return self._json(status, payload)

    def version(self) -> Dict[str, Any]:
        """``GET /version``: package version, container formats, engines."""
        status, payload, _ = self._request("GET", "/version")
        self._expect(200, status, payload)
        return self._json(status, payload)

    def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` document (histograms, flight, shards)."""
        status, payload, _ = self._request("GET", "/stats")
        self._expect(200, status, payload)
        return self._json(status, payload)
