"""Request metrics of the serving tier: latency histograms per endpoint.

The service keeps its own measurements instead of relying on an external
metrics stack: a :class:`LatencyHistogram` per endpoint (fixed log-spaced
buckets, so memory is constant and percentiles are cheap), request/error
counters and an in-flight gauge.  ``GET /stats`` serialises the lot, the
load benchmark reads it to attribute latency, and the nightly soak job
uploads it as the run's artefact.

Buckets are geometric (each bound doubles) from 50 µs to ~52 s: request
latencies span four orders of magnitude between a warm cache hit and a
cold multi-cell decode, which a linear histogram cannot cover with a
bounded bucket count.  Quantiles report the upper bound of the bucket the
quantile falls in, clamped to the largest observation — an estimate that
errs on the pessimistic side by at most one bucket width.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "EndpointStats", "ServerStats"]

#: Geometric bucket upper bounds in milliseconds: 0.05 ms * 2**k.
_BUCKET_BOUNDS_MS: List[float] = [0.05 * (2.0**k) for k in range(21)]


class LatencyHistogram:
    """Fixed-bucket latency histogram with cheap quantile estimates."""

    def __init__(self) -> None:
        self._counts = [0] * (len(_BUCKET_BOUNDS_MS) + 1)
        self._count = 0
        self._sum_ms = 0.0
        self._min_ms = float("inf")
        self._max_ms = 0.0

    def record(self, milliseconds: float) -> None:
        """Record one observation (negative clock glitches clamp to 0)."""
        value = max(0.0, milliseconds)
        index = 0
        while index < len(_BUCKET_BOUNDS_MS) and value > _BUCKET_BOUNDS_MS[index]:
            index += 1
        self._counts[index] += 1
        self._count += 1
        self._sum_ms += value
        self._min_ms = min(self._min_ms, value)
        self._max_ms = max(self._max_ms, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean_ms(self) -> float:
        return self._sum_ms / self._count if self._count else 0.0

    @property
    def max_ms(self) -> float:
        return self._max_ms

    def quantile_ms(self, q: float) -> float:
        """Latency below which a ``q`` fraction of observations fall.

        Reported as the matching bucket's upper bound, clamped to the
        largest observation; ``0.0`` when nothing was recorded.
        """
        if not self._count:
            return 0.0
        target = max(1, int(q * self._count + 0.5))
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(_BUCKET_BOUNDS_MS):
                    return min(_BUCKET_BOUNDS_MS[index], self._max_ms)
                return self._max_ms
        return self._max_ms  # pragma: no cover - cumulative always reaches count

    def as_json(self) -> Dict[str, object]:
        buckets = {}
        for bound, bucket_count in zip(_BUCKET_BOUNDS_MS, self._counts):
            if bucket_count:
                buckets["%.2f" % bound] = bucket_count
        if self._counts[-1]:
            buckets["+inf"] = self._counts[-1]
        return {
            "count": self._count,
            "mean_ms": self.mean_ms,
            "min_ms": self._min_ms if self._count else 0.0,
            "max_ms": self._max_ms,
            "p50_ms": self.quantile_ms(0.50),
            "p99_ms": self.quantile_ms(0.99),
            "buckets_le_ms": buckets,
        }


class EndpointStats:
    """Latency histogram plus request/error counters of one endpoint."""

    def __init__(self) -> None:
        self.histogram = LatencyHistogram()
        self.requests = 0
        self.errors = 0

    def record(self, milliseconds: float, status: int) -> None:
        self.histogram.record(milliseconds)
        self.requests += 1
        if status >= 400:
            self.errors += 1

    def as_json(self) -> Dict[str, object]:
        return dict(
            self.histogram.as_json(), requests=self.requests, errors=self.errors
        )


class ServerStats:
    """All per-endpoint stats plus service-wide gauges, thread-safe.

    Handlers record from event-loop callbacks while ``/stats`` renders and
    the benchmark polls, so every mutation and snapshot takes the lock.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointStats] = {}
        self._in_flight = 0
        self._in_flight_high_water = 0
        self._clock = clock
        self._started_at: Optional[float] = None
        self._draining = False
        self._counters: Dict[str, int] = {}
        self._shard_counters: Dict[str, Dict[str, int]] = {}

    def mark_started(self) -> None:
        with self._lock:
            self._started_at = self._clock()

    def mark_draining(self) -> None:
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named hardening counter (shed, deadline_exceeded, …)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def bump_shard(self, shard: str, name: str, amount: int = 1) -> None:
        """Increment a per-shard counter (failovers, write_failovers, …)."""
        with self._lock:
            counters = self._shard_counters.setdefault(shard, {})
            counters[name] = counters.get(name, 0) + amount

    def shard_counter(self, shard: str, name: str) -> int:
        with self._lock:
            return self._shard_counters.get(shard, {}).get(name, 0)

    def request_started(self) -> None:
        with self._lock:
            self._in_flight += 1
            if self._in_flight > self._in_flight_high_water:
                self._in_flight_high_water = self._in_flight

    def request_finished(self, endpoint: str, milliseconds: float, status: int) -> None:
        with self._lock:
            self._in_flight -= 1
            entry = self._endpoints.get(endpoint)
            if entry is None:
                entry = self._endpoints[endpoint] = EndpointStats()
            entry.record(milliseconds, status)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def as_json(self) -> Dict[str, object]:
        with self._lock:
            uptime = (
                self._clock() - self._started_at if self._started_at is not None else 0.0
            )
            return {
                "uptime_seconds": uptime,
                "in_flight": self._in_flight,
                "in_flight_high_water": self._in_flight_high_water,
                "draining": self._draining,
                "requests_total": sum(e.requests for e in self._endpoints.values()),
                "errors_total": sum(e.errors for e in self._endpoints.values()),
                "counters": dict(sorted(self._counters.items())),
                "shard_counters": {
                    shard: dict(sorted(counters.items()))
                    for shard, counters in sorted(self._shard_counters.items())
                },
                "endpoints": {
                    name: entry.as_json()
                    for name, entry in sorted(self._endpoints.items())
                },
            }
