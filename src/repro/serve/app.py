"""The ``repro-serve`` service: asyncio front-end over sharded image stores.

Request path, layer by layer::

    asyncio connection handler          (http.py: parse / serialise)
      -> endpoint dispatch              (_dispatch: path -> operation)
        -> single-flight map            (flight.py: coalesce identical reads)
          -> thread-pool offload        (CPU-bound entropy decodes off the loop)
            -> StoreRouter              (router.py: rendezvous shard pick)
              -> ImageStore             (store/: cache + range reads + CRC)

Two properties keep the event loop responsive under load: every store
operation (encode, decode, backend I/O) runs on a worker thread, and
identical concurrent reads collapse into one store call whose result all
waiters share — a 64-client stampede on one cold region costs one decode,
not 64.  Reads are keyed by (operation, key, arguments); the served bytes
are built once inside the flight, so coalesced followers reuse the
serialised response too.

Endpoints (all responses JSON unless noted):

* ``PUT /images[?stripes=S&plane_delta=1]`` — body is a Netpbm image
  (encoded server-side) or a ready ``.rplc`` container; answers 201 with
  the content key and owning shard.
* ``GET /images/{key}`` — full decode, Netpbm body.
* ``GET /images/{key}/plane/{k}`` — one component plane, PGM body.
* ``GET /images/{key}/region/{a}-{b}`` — rows of stripes [a, b), Netpbm.
* ``POST /images/{key}/regions`` — body ``{"ranges": [[a, b], ...]}``;
  answers every region in one round trip (cells deduped across regions).
* ``GET /healthz`` — liveness plus shard count.
* ``GET /stats`` — per-endpoint latency histograms, single-flight
  counters, per-shard backend/cache stats (byte occupancy included).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import io
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.exceptions import (
    BitstreamError,
    BlobNotFoundError,
    ConfigError,
    ImageFormatError,
    ReproError,
    StoreError,
)
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import read_image, write_pam, write_pgm, write_ppm
from repro.serve.flight import SingleFlight
from repro.serve.http import (
    HttpProtocolError,
    HttpRequest,
    json_payload,
    read_request,
    render_response,
)
from repro.serve.router import StoreRouter
from repro.serve.stats import ServerStats
from repro.store.store import ImageStore

__all__ = ["ImageService", "ReproServer", "ServerHandle", "start_server_thread"]

_NETPBM_MAGICS = (b"P1", b"P2", b"P3", b"P4", b"P5", b"P6", b"P7")

_CONTENT_TYPES = {
    "pgm": "image/x-portable-graymap",
    "ppm": "image/x-portable-pixmap",
    "pam": "image/x-portable-arbitrarymap",
}


def image_to_netpbm(image: Union[GrayImage, PlanarImage]) -> Tuple[bytes, str]:
    """Serialise a decoded image to the natural Netpbm format + MIME type."""
    buffer = io.BytesIO()
    if isinstance(image, PlanarImage):
        if image.num_planes == 1:
            write_pgm(image.gray(), buffer)
            kind = "pgm"
        elif image.num_planes == 3:
            write_ppm(image, buffer)
            kind = "ppm"
        else:
            write_pam(image, buffer)
            kind = "pam"
    else:
        write_pgm(image, buffer)
        kind = "pgm"
    return buffer.getvalue(), _CONTENT_TYPES[kind]


class ImageService:
    """Shard routing + coalescing + serialisation over image stores.

    The service owns the synchronous half of the tier: every method here
    is thread-safe and blocking, designed to run on the worker pool while
    :class:`ReproServer` keeps the event loop free.  Tests and the load
    benchmark may call it directly (no sockets) — the HTTP layer adds no
    behaviour beyond transport.
    """

    def __init__(
        self,
        stores: Sequence[ImageStore],
        names: Sequence[str] = (),
        max_workers: Optional[int] = None,
        default_stripes: int = 4,
    ) -> None:
        self.router = StoreRouter(stores, names)
        self.flight = SingleFlight()
        self.stats = ServerStats()
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self.default_stripes = default_stripes

    def close(self) -> None:
        self.executor.shutdown(wait=True)
        self.router.close()

    # ------------------------------------------------------------------ #
    # operations (blocking; run these on the worker pool)
    # ------------------------------------------------------------------ #

    def put_image(
        self, body: bytes, stripes: Optional[int] = None, plane_delta: bool = False
    ) -> Dict[str, object]:
        """Store a Netpbm image (encoding it) or a ready container.

        Returns the routing outcome: content key, owning shard, stored
        byte count and whether the service encoded the body itself.
        """
        if not body:
            raise ConfigError("PUT body is empty — expected a Netpbm image or container")
        encoded = body[:2] in _NETPBM_MAGICS
        if encoded:
            image = read_image(io.BytesIO(body))
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
            stream, _ = encode_grid(
                image,
                config,
                engine=self._engine(),
                stripes=stripes if stripes is not None else self.default_stripes,
                plane_delta=plane_delta,
            )
        else:
            stream = body
        # Routing needs the content key, which is the hash of the encoded
        # stream — so hash first, then hand the bytes to the owning shard.
        key = hashlib.sha256(stream).hexdigest()
        store = self.router.store_for(key)
        try:
            stored_key = store.put_stream(stream)
        except BitstreamError as error:
            # The *request* carried the bad bytes — a client error, unlike
            # a BitstreamError surfacing from storage on the read paths.
            raise ConfigError("request body is not a valid container: %s" % error)
        assert stored_key == key
        return {
            "key": key,
            "shard": self.router.shard_name(key),
            "bytes": len(stream),
            "encoded": encoded,
        }

    def get_image(self, key: str) -> Tuple[bytes, str]:
        """Full decode (the cold, whole-blob path), coalesced per key."""
        return self.flight.run(
            ("image", key),
            lambda: image_to_netpbm(self.router.store_for(key).get(key)),
        )

    def get_plane(self, key: str, plane: int) -> Tuple[bytes, str]:
        return self.flight.run(
            ("plane", key, plane),
            lambda: image_to_netpbm(self.router.store_for(key).get_plane(key, plane)),
        )

    def get_region(self, key: str, start: int, stop: int) -> Tuple[bytes, str]:
        return self.flight.run(
            ("region", key, start, stop),
            lambda: image_to_netpbm(
                self.router.store_for(key).get_region(key, (start, stop))
            ),
        )

    def get_regions(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> Dict[str, object]:
        """A batch of regions in one response (cells deduped by the store)."""
        normalised = tuple((int(a), int(b)) for a, b in ranges)

        def resolve() -> Dict[str, object]:
            images = self.router.store_for(key).get_regions(key, list(normalised))
            regions = []
            for (start, stop), image in zip(normalised, images):
                payload, content_type = image_to_netpbm(image)
                regions.append(
                    {
                        "start": start,
                        "stop": stop,
                        "width": image.width,
                        "height": image.height,
                        "planes": getattr(image, "num_planes", 1),
                        "content_type": content_type,
                        "netpbm_base64": base64.b64encode(payload).decode("ascii"),
                    }
                )
            return {"key": key, "regions": regions}

        return self.flight.run(("regions", key, normalised), resolve)

    def healthz(self) -> Dict[str, object]:
        return {"status": "ok", "shards": len(self.router)}

    def stats_payload(self) -> Dict[str, object]:
        return {
            "server": self.stats.as_json(),
            "flight": self.flight.stats(),
            "shards": self.router.stats(),
        }

    def _engine(self) -> str:
        return self.router.stores[0].engine


class ReproServer:
    """The asyncio HTTP front-end bound to one :class:`ImageService`."""

    def __init__(
        self, service: ImageService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=2**16,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.service.stats.mark_started()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpProtocolError as error:
                    writer.write(self._error_response(error.status, str(error), False))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, body, content_type, endpoint = await self._dispatch(request)
                keep_alive = request.keep_alive
                writer.write(
                    render_response(status, body, content_type, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Shutdown cancels parked handlers mid-close; the connection
                # is gone either way, so ending the task quietly is correct.
                pass

    async def _dispatch(self, request: HttpRequest) -> Tuple[int, bytes, str, str]:
        """Route one request; returns (status, body, content-type, label)."""
        self.service.stats.request_started()
        started = time.perf_counter()
        endpoint = "other"
        status = 500
        try:
            endpoint, status, body, content_type = await self._route(request)
        except HttpProtocolError as error:
            status, body, content_type = self._error(error.status, error)
        except BlobNotFoundError as error:
            status, body, content_type = self._error(404, error)
        except (ConfigError, ImageFormatError, StoreError) as error:
            status, body, content_type = self._error(400, error)
        except ReproError as error:
            # Anything else the library raises on purpose (corrupt stored
            # stream, model state violation) is a server-side failure.
            status, body, content_type = self._error(500, error)
        except Exception as error:
            # Backstop for handler bugs: a request must ALWAYS get an
            # answer and the connection must keep serving — an unexpected
            # TypeError/KeyError dropping the socket with no status line
            # is strictly worse than an honest 500.
            status, body, content_type = self._error(500, error)
        finally:
            elapsed_ms = 1e3 * (time.perf_counter() - started)
            self.service.stats.request_finished(endpoint, elapsed_ms, status)
        return status, body, content_type, endpoint

    async def _route(self, request: HttpRequest) -> Tuple[str, int, bytes, str]:
        parts = [part for part in request.path.split("/") if part]
        method = request.method

        if parts == ["healthz"] and method == "GET":
            return "healthz", 200, json_payload(self.service.healthz()), "application/json"
        if parts == ["stats"] and method == "GET":
            payload = await self._offload(self.service.stats_payload)
            return "stats", 200, json_payload(payload), "application/json"
        if parts == ["images"] and method == "PUT":
            outcome = await self._offload(
                self.service.put_image,
                request.body,
                self._int_query(request, "stripes"),
                self._flag_query(request, "plane_delta"),
            )
            return "put_image", 201, json_payload(outcome), "application/json"
        if len(parts) >= 2 and parts[0] == "images":
            key = parts[1]
            if len(parts) == 2 and method == "GET":
                body, content_type = await self._offload(self.service.get_image, key)
                return "get_image", 200, body, content_type
            if len(parts) == 4 and parts[2] == "plane" and method == "GET":
                plane = self._int_path(parts[3], "plane index")
                body, content_type = await self._offload(
                    self.service.get_plane, key, plane
                )
                return "get_plane", 200, body, content_type
            if len(parts) == 4 and parts[2] == "region" and method == "GET":
                start, stop = self._parse_range(parts[3])
                body, content_type = await self._offload(
                    self.service.get_region, key, start, stop
                )
                return "get_region", 200, body, content_type
            if len(parts) == 3 and parts[2] == "regions" and method == "POST":
                ranges = self._parse_ranges_body(request.body)
                payload = await self._offload(self.service.get_regions, key, ranges)
                return "get_regions", 200, json_payload(payload), "application/json"

        if parts and parts[0] in ("images", "healthz", "stats"):
            raise HttpProtocolError(405, "%s is not supported on %s" % (method, request.path))
        raise BlobNotFoundError("no route for %s %s" % (method, request.path))

    async def _offload(self, function, *args):
        """Run a blocking service operation on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.service.executor, lambda: function(*args)
        )

    # ------------------------------------------------------------------ #
    # request parsing helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _int_query(request: HttpRequest, name: str) -> Optional[int]:
        value = request.query.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise ConfigError("query parameter %s=%r is not an integer" % (name, value))

    @staticmethod
    def _flag_query(request: HttpRequest, name: str) -> bool:
        return request.query.get(name, "").lower() in ("1", "true", "yes", "on")

    @staticmethod
    def _int_path(text: str, what: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ConfigError("%s %r is not an integer" % (what, text))

    @staticmethod
    def _parse_range(text: str) -> Tuple[int, int]:
        start, separator, stop = text.partition("-")
        if not separator:
            raise ConfigError("region must be START-STOP stripe indices, got %r" % text)
        try:
            return int(start), int(stop)
        except ValueError:
            raise ConfigError("region must be START-STOP stripe indices, got %r" % text)

    @staticmethod
    def _parse_ranges_body(body: bytes) -> List[Tuple[int, int]]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ConfigError("regions body must be JSON {'ranges': [[a, b], ...]}")
        ranges = document.get("ranges") if isinstance(document, dict) else document
        if not isinstance(ranges, list) or not ranges:
            raise ConfigError("regions body must list at least one [start, stop] pair")
        parsed: List[Tuple[int, int]] = []
        for entry in ranges:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ConfigError("each region must be a [start, stop] pair, got %r" % (entry,))
            try:
                parsed.append((int(entry[0]), int(entry[1])))
            except (TypeError, ValueError):
                # int(None)/int({}) raise TypeError, which the dispatch
                # error mapping deliberately does not catch — convert here
                # so malformed-but-valid JSON stays a 400, not a dropped
                # connection.
                raise ConfigError(
                    "each region must be a [start, stop] pair of integers, got %r"
                    % (entry,)
                ) from None
        return parsed

    @staticmethod
    def _error(status: int, error: BaseException) -> Tuple[int, bytes, str]:
        message = "%s: %s" % (type(error).__name__, error)
        return status, json_payload({"error": message}), "application/json"

    @staticmethod
    def _error_response(status: int, message: str, keep_alive: bool) -> bytes:
        return render_response(
            status,
            json_payload({"error": message}),
            "application/json",
            keep_alive=keep_alive,
        )


class ServerHandle:
    """A running server on a daemon thread (tests, benchmarks, smoke)."""

    def __init__(
        self,
        service: ImageService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        server: ReproServer,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop
        self._server = server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.host, self._server.port

    def stop(self, close_service: bool = True) -> None:
        """Stop accepting, join the loop thread, optionally close stores."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        if close_service:
            self.service.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    service: ImageService, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
) -> ServerHandle:
    """Boot a :class:`ReproServer` on a fresh event loop in a daemon thread.

    Returns once the socket is bound (``handle.port`` is the real port —
    pass ``port=0`` for an ephemeral one).  In-process callers (tests, the
    load benchmark) get a real network server without blocking their own
    thread or loop.
    """
    started = threading.Event()
    failure: List[BaseException] = []
    server = ReproServer(service, host, port)
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # pragma: no cover - bind failures
            failure.append(error)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # Idle keep-alive connections leave handler tasks parked on a
            # readline; cancel them so the loop closes without complaints.
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout):  # pragma: no cover - never with a local bind
        raise StoreError("server failed to start within %.1fs" % timeout)
    if failure:
        raise failure[0]
    return ServerHandle(service, thread, loop, server)
