"""The ``repro-serve`` service: asyncio front-end over sharded image stores.

Request path, layer by layer::

    asyncio connection handler          (http.py: parse / serialise)
      -> endpoint dispatch              (_dispatch: path -> operation)
        -> single-flight map            (flight.py: coalesce identical reads)
          -> thread-pool offload        (CPU-bound entropy decodes off the loop)
            -> StoreRouter              (router.py: rendezvous shard pick)
              -> ImageStore             (store/: cache + range reads + CRC)

Two properties keep the event loop responsive under load: every store
operation (encode, decode, backend I/O) runs on a worker thread, and
identical concurrent reads collapse into one store call whose result all
waiters share — a 64-client stampede on one cold region costs one decode,
not 64.  Reads are keyed by (operation, key, arguments); the served bytes
are built once inside the flight, so coalesced followers reuse the
serialised response too.

A third property keeps the tier standing on a bad day — it degrades
instead of buckling:

* **admission control** — admitted in-flight requests are bounded by a
  watermark pair (:mod:`repro.serve.admission`); past the high watermark
  requests are shed with ``429`` + ``Retry-After`` rather than queued
  without bound, and optional per-client connection caps and token-bucket
  rate limits answer abusive peers the same way;
* **request deadlines** — every request carries a
  :class:`~repro.serve.deadline.RequestContext` into the thread-pool
  offload; when the budget lapses (or the client disconnects) the HTTP
  layer answers ``504`` and the worker abandons the decode at the next
  cell boundary through the store's ``cell_hook`` seam, so expired work
  cannot pin the pool;
* **graceful drain** — :meth:`ReproServer.drain` stops accepting, lets
  in-flight requests finish within a budget and then closes lingering
  connections; ``repro-serve`` wires it to SIGTERM and exits 0.

``/healthz`` and ``/stats`` bypass admission and rate limits: an operator
must be able to observe an overloaded server.

Endpoints (all responses JSON unless noted):

* ``PUT /images[?stripes=S&plane_delta=1]`` — body is a Netpbm image
  (encoded server-side) or a ready ``.rplc`` container; answers 201 with
  the content key and owning shard.
* ``GET /images/{key}`` — full decode, Netpbm body.
* ``GET /images/{key}/plane/{k}`` — one component plane, PGM body.
* ``GET /images/{key}/region/{a}-{b}`` — rows of stripes [a, b), Netpbm.
* ``POST /images/{key}/regions`` — body ``{"ranges": [[a, b], ...]}``;
  answers every region in one round trip (cells deduped across regions).
* ``GET /catalog[?limit=&offset=&tag=&planes=&engine=&include_deleted=&deleted_only=]``
  — the merged metadata catalog across every shard: filtered, newest
  first, paginated; each row carries its owning shard.
* ``DELETE /images/{key}[?ttl=SECONDS]`` — soft-delete: a tombstone with
  a TTL hides the stream from reads until a GC sweep reclaims it (see
  :mod:`repro.store.gc`); the catalog keeps the tombstoned row.
* ``GET /healthz`` — liveness plus shard count.
* ``GET /stats`` — per-endpoint latency histograms, single-flight
  counters, per-shard backend/cache/catalog stats (byte occupancy
  included).
* ``GET /version`` — package version, supported container versions,
  registered engine names.

Dispatch is driven by the declarative route table in
:mod:`repro.serve.routes` — one ``_handle_<name>`` method per entry —
and every error response carries the structured envelope
``{"error", "code", "request_id"}`` defined there.

The catalog endpoints go through the same admission control, deadlines
and stats accounting as the data path — a catalog scan cannot bypass the
watermarks.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import io
import json
import math
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import (
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.cellgrid import encode_grid, select_cells
from repro.core.config import CodecConfig
from repro.exceptions import (
    BitstreamError,
    BlobNotFoundError,
    ConfigError,
    DeadlineExceededError,
    ImageFormatError,
    OverloadedError,
    ReproError,
    StoreError,
)
from repro.imaging.image import GrayImage
from repro.imaging.planar import PlanarImage
from repro.imaging.pnm import (
    netpbm_region_header,
    read_image,
    split_netpbm_payload,
    write_pam,
    write_pgm,
    write_ppm,
)
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    ClientLimiter,
)
from repro.serve.deadline import (
    Deadline,
    RequestContext,
    bind_context,
    context_cell_hook,
    current_context,
)
from repro.serve.flight import SingleFlight
from repro.serve.health import HealthTracker
from repro.serve.http import (
    STREAM_TERMINATOR,
    HttpProtocolError,
    HttpRequest,
    encode_chunk,
    json_payload,
    read_request,
    render_response,
    render_stream_head,
)
from repro.serve.reshard import Resharder
from repro.serve.router import StoreRouter
from repro.serve.routes import (
    classify_error,
    error_payload,
    match_route,
    new_request_id,
    server_version,
    split_path,
    version_payload,
)
from repro.serve.stats import ServerStats
from repro.store.catalog import CatalogFilter
from repro.store.store import ImageStore

__all__ = [
    "DEFAULT_DEADLINE_SECONDS",
    "ImageService",
    "ReproServer",
    "ServerHandle",
    "StreamingBody",
    "start_server_thread",
]

#: Default per-request time budget; ``0`` disables deadlines entirely.
DEFAULT_DEADLINE_SECONDS = 30.0

_T = TypeVar("_T")

_NETPBM_MAGICS = (b"P1", b"P2", b"P3", b"P4", b"P5", b"P6", b"P7")

_CONTENT_TYPES = {
    "pgm": "image/x-portable-graymap",
    "ppm": "image/x-portable-pixmap",
    "pam": "image/x-portable-arbitrarymap",
}


def _consume_outcome(future: "asyncio.Future[object]") -> None:
    """Retrieve an abandoned offload's outcome so asyncio never logs it."""
    try:
        future.exception()
    except asyncio.CancelledError:
        pass


def image_to_netpbm(image: Union[GrayImage, PlanarImage]) -> Tuple[bytes, str]:
    """Serialise a decoded image to the natural Netpbm format + MIME type."""
    buffer = io.BytesIO()
    if isinstance(image, PlanarImage):
        if image.num_planes == 1:
            write_pgm(image.gray(), buffer)
            kind = "pgm"
        elif image.num_planes == 3:
            write_ppm(image, buffer)
            kind = "ppm"
        else:
            write_pam(image, buffer)
            kind = "pam"
    else:
        write_pgm(image, buffer)
        kind = "pgm"
    return buffer.getvalue(), _CONTENT_TYPES[kind]


class StreamingBody:
    """A chunk-streamed response body, produced by ``_route``.

    Instead of assembled bytes, the route hands the connection handler an
    async iterator of body chunks; the handler frames them with chunked
    transfer-encoding as they become available, so the first cells of a
    large region reach the client while later cells are still decoding.

    ``on_close`` transfers ownership of the request's admission slot: the
    dispatch layer normally releases it when the route returns, but a
    streaming response keeps burning worker time after that point, so the
    slot is held until the stream ends (successfully or not) to keep the
    in-flight watermark honest.
    """

    def __init__(
        self,
        chunks: AsyncIterator[bytes],
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.chunks = chunks
        self.on_close = on_close


class ImageService:
    """Shard routing + coalescing + serialisation over image stores.

    The service owns the synchronous half of the tier: every method here
    is thread-safe and blocking, designed to run on the worker pool while
    :class:`ReproServer` keeps the event loop free.  Tests and the load
    benchmark may call it directly (no sockets) — the HTTP layer adds no
    behaviour beyond transport.
    """

    def __init__(
        self,
        stores: Sequence[ImageStore],
        names: Sequence[str] = (),
        max_workers: Optional[int] = None,
        default_stripes: int = 4,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        shed_low: Optional[int] = None,
        retry_after: float = 1.0,
        max_connections_per_client: int = 0,
        client_rate: float = 0.0,
        client_burst: Optional[float] = None,
        default_deadline: float = DEFAULT_DEADLINE_SECONDS,
        read_timeout: Optional[float] = 30.0,
        idle_timeout: Optional[float] = None,
        drain_budget: float = 10.0,
        replication: int = 1,
        health_down_after: int = 3,
        health_up_after: int = 2,
    ) -> None:
        self.router = StoreRouter(stores, names, replication=replication)
        self.health = HealthTracker(
            names=self.router.names,
            down_after=health_down_after,
            up_after=health_up_after,
        )
        self.resharder: Optional[Resharder] = None
        self.flight = SingleFlight()
        self.stats = ServerStats()
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self.default_stripes = default_stripes
        self.admission = AdmissionController(
            high=max_inflight, low=shed_low, retry_after=retry_after
        )
        self.limiter = ClientLimiter(
            max_connections=max_connections_per_client,
            rate=client_rate,
            burst=client_burst,
        )
        self.default_deadline = max(0.0, default_deadline)
        self.read_timeout = read_timeout
        self.idle_timeout = idle_timeout
        self.drain_budget = drain_budget
        # Deadline checkpoint at every cell fetch+decode: a multi-cell
        # request whose budget lapsed (or whose client hung up) aborts at
        # the next cell boundary instead of pinning a worker thread.
        for store in self.router.stores:
            if store.cell_hook is None:
                store.cell_hook = context_cell_hook

    def close(self) -> None:
        self.executor.shutdown(wait=True)
        self.router.close()

    def _coalesced(self, key, supplier):
        """Single-flight with a follower timeout from the active deadline.

        A coalesced follower whose own budget is shorter than the leader's
        remaining work must answer 504, not overshoot its deadline waiting
        on somebody else's flight.
        """
        context = current_context()
        timeout: Optional[float] = None
        if context is not None:
            remaining = context.deadline.remaining
            if not math.isinf(remaining):
                timeout = remaining
        return self.flight.run(key, supplier, timeout=timeout)

    def _read_replicas(self, key: str, reader: Callable[[ImageStore], _T]) -> _T:
        """Run ``reader`` against ``key``'s owners, failing over in order.

        Owners come from the router in rendezvous-score order (the union
        of old and new memberships mid-reshard) and are reordered so
        believed-healthy shards go first; a down shard is a last resort,
        never skipped outright.  A :class:`StoreError` fails over to the
        next replica (counted per shard in ``/stats``); a
        :class:`BlobNotFoundError` also moves on — the key may not have
        been replicated or migrated there yet — and only becomes the
        answer when *every* owner misses.  Deadline expiry aborts the
        loop (a stalled replica must not consume the followers' budget
        too).  This helper runs *inside* the single-flight supplier, so
        coalesced followers share the failed-over result rather than a
        poisoned error.
        """
        candidates = self.health.prefer_healthy(self.router.owners(key))
        context = current_context()
        not_found: Optional[BlobNotFoundError] = None
        failure: Optional[StoreError] = None
        for position, (name, store) in enumerate(candidates):
            if position and context is not None:
                context.check("replica failover")
            try:
                value = reader(store)
            except BlobNotFoundError as error:
                # The shard answered; it just has no such blob (yet).
                self.health.record_success(name)
                not_found = error
                continue
            except DeadlineExceededError:
                raise
            except StoreError as error:
                self.health.record_failure(name)
                self.stats.bump("failovers")
                self.stats.bump_shard(name, "failovers")
                failure = error
                continue
            self.health.record_success(name)
            return value
        if failure is not None:
            # At least one owner was unreadable — the blob may live there,
            # so a 404 would lie; surface the store failure instead.
            raise failure
        assert not_found is not None
        raise not_found

    # ------------------------------------------------------------------ #
    # operations (blocking; run these on the worker pool)
    # ------------------------------------------------------------------ #

    def put_image(
        self, body: bytes, stripes: Optional[int] = None, plane_delta: bool = False
    ) -> Dict[str, object]:
        """Store a Netpbm image (encoding it) or a ready container.

        Returns the routing outcome: content key, owning shard, stored
        byte count and whether the service encoded the body itself.
        """
        if not body:
            raise ConfigError("PUT body is empty — expected a Netpbm image or container")
        encoded = body[:2] in _NETPBM_MAGICS
        if encoded:
            image = read_image(io.BytesIO(body))
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
            stream, _ = encode_grid(
                image,
                config,
                engine=self._engine(),
                stripes=stripes if stripes is not None else self.default_stripes,
                plane_delta=plane_delta,
            )
        else:
            stream = body
        # Routing needs the content key, which is the hash of the encoded
        # stream — so hash first, then fan the bytes out to every owner.
        key = hashlib.sha256(stream).hexdigest()
        replicas: List[str] = []
        failure: Optional[StoreError] = None
        for name, store in self.router.owners(key):
            try:
                stored_key = store.put_stream(stream)
            except BitstreamError as error:
                # The *request* carried the bad bytes — a client error,
                # unlike a BitstreamError surfacing from storage on the
                # read paths — and it is equally bad on every shard.
                raise ConfigError("request body is not a valid container: %s" % error)
            except StoreError as error:
                # A down replica must not fail the write while another
                # owner can take it; read failover heals the gap after
                # the shard revives.
                self.health.record_failure(name)
                self.stats.bump("write_failovers")
                self.stats.bump_shard(name, "write_failovers")
                failure = error
                continue
            self.health.record_success(name)
            assert stored_key == key
            replicas.append(name)
        if not replicas:
            assert failure is not None
            raise failure
        return {
            "key": key,
            "shard": self.router.shard_name(key),
            "bytes": len(stream),
            "encoded": encoded,
            "replicas": replicas,
        }

    def get_image(self, key: str) -> Tuple[bytes, str]:
        """Full decode (the cold, whole-blob path), coalesced per key."""
        return self._coalesced(
            ("image", key),
            lambda: image_to_netpbm(
                self._read_replicas(key, lambda store: store.get(key))
            ),
        )

    def get_plane(self, key: str, plane: int) -> Tuple[bytes, str]:
        return self._coalesced(
            ("plane", key, plane),
            lambda: image_to_netpbm(
                self._read_replicas(key, lambda store: store.get_plane(key, plane))
            ),
        )

    def get_region(self, key: str, start: int, stop: int) -> Tuple[bytes, str]:
        return self._coalesced(
            ("region", key, start, stop),
            lambda: image_to_netpbm(
                self._read_replicas(
                    key, lambda store: store.get_region(key, (start, stop))
                )
            ),
        )

    def get_regions(
        self, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> Dict[str, object]:
        """A batch of regions in one response (cells deduped by the store)."""
        normalised = tuple((int(a), int(b)) for a, b in ranges)

        def resolve() -> Dict[str, object]:
            images = self._read_replicas(
                key, lambda store: store.get_regions(key, list(normalised))
            )
            regions = []
            for (start, stop), image in zip(normalised, images):
                payload, content_type = image_to_netpbm(image)
                regions.append(
                    {
                        "start": start,
                        "stop": stop,
                        "width": image.width,
                        "height": image.height,
                        "planes": getattr(image, "num_planes", 1),
                        "content_type": content_type,
                        "netpbm_base64": base64.b64encode(payload).decode("ascii"),
                    }
                )
            return {"key": key, "regions": regions}

        return self._coalesced(("regions", key, normalised), resolve)

    def region_stream_plan(self, key: str, start: int, stop: int) -> Tuple[bytes, str, Tuple[int, ...]]:
        """Geometry of a streamed region: (header bytes, content type, stripes).

        Computed from the stream header alone — the header parse is
        memoized by the store, so the first chunk of a streamed response
        (the Netpbm header) costs no cell decodes.  The stripe indices are
        the per-chunk fetch plan; their sample payloads concatenate to the
        exact bytes a fully assembled region response would carry.
        """
        header = self._read_replicas(key, lambda store: store.header(key))
        plan, requested, _needed = select_cells(header, None, (start, stop))
        height = sum(spec.row_count for spec in plan)
        head, kind = netpbm_region_header(
            len(requested), header.width, height, header.bit_depth
        )
        return head, _CONTENT_TYPES[kind], tuple(spec.index for spec in plan)

    def validate_regions(self, key: str, ranges: Sequence[Tuple[int, int]]) -> None:
        """Raise the error a bad batched-stream request deserves, cheaply.

        A streamed batch commits its 200 status before any region decodes,
        so range validation must happen first — against the memoized
        stream header only, no cell reads — to keep unknown keys at 404
        and out-of-range stripes at 400, matching the buffered endpoint.
        """
        header = self._read_replicas(key, lambda store: store.header(key))
        for start, stop in ranges:
            select_cells(header, None, (start, stop))

    def region_entry(self, key: str, start: int, stop: int) -> Dict[str, object]:
        """One region as the JSON object a streamed batch emits per line."""

        def resolve() -> Dict[str, object]:
            image = self._read_replicas(
                key, lambda store: store.get_region(key, (start, stop))
            )
            payload, content_type = image_to_netpbm(image)
            return {
                "key": key,
                "start": start,
                "stop": stop,
                "width": image.width,
                "height": image.height,
                "planes": getattr(image, "num_planes", 1),
                "content_type": content_type,
                "netpbm_base64": base64.b64encode(payload).decode("ascii"),
            }

        return self._coalesced(("region_entry", key, start, stop), resolve)

    def catalog_payload(
        self,
        filter: CatalogFilter,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Dict[str, object]:
        """The merged catalog across every shard: filtered and paginated.

        Each shard's catalog is queried with ``filter``, the matches are
        merged newest-first (the same order a single catalog lists) and
        the page is cut from the merged sequence, so pagination is stable
        across shard boundaries.  Rows carry their owning shard's name;
        with replication the same key legitimately appears under several
        shards.

        The ``offset + limit`` bound is pushed down into every shard's
        query: any row of the merged page is by construction within the
        first ``offset + limit`` rows of its own shard, so the merge sort
        touches O(shards × page) rows instead of the whole catalog.  The
        total stays exact — each shard reports its full match count even
        when truncating.
        """
        bound = None if limit is None else offset + limit
        total = 0
        merged: List[Tuple[object, str]] = []
        for name, store in zip(self.router.names, self.router.stores):
            matches, shard_total = store.catalog.query(filter, limit=bound)
            total += shard_total
            merged.extend((entry, name) for entry in matches)
        merged.sort(key=lambda pair: (-pair[0].created_at, pair[0].key))  # type: ignore[attr-defined]
        end = None if limit is None else offset + limit
        page = merged[offset:end]
        entries = []
        for entry, shard in page:
            row = entry.as_json()  # type: ignore[attr-defined]
            row["shard"] = shard
            entries.append(row)
        return {"entries": entries, "total": total, "offset": offset}

    def delete_image(self, key: str, ttl: Optional[float] = None) -> Dict[str, object]:
        """Soft-delete ``key`` on every owning shard (tombstone + TTL).

        The tombstone must land on each replica, or a read failing over
        (or the key's migration during a reshard) would resurrect the
        blob.  Owners without the blob are skipped; the delete succeeds
        when at least one replica was tombstoned and 404s only when no
        owner ever stored the key.
        """
        deleted: List[str] = []
        entry = None
        not_found: Optional[BlobNotFoundError] = None
        failure: Optional[StoreError] = None
        for name, store in self.router.owners(key):
            try:
                if ttl is None:
                    entry = store.soft_delete(key)
                else:
                    entry = store.soft_delete(key, ttl_seconds=ttl)
            except BlobNotFoundError as error:
                self.health.record_success(name)
                not_found = error
                continue
            except StoreError as error:
                self.health.record_failure(name)
                self.stats.bump("write_failovers")
                self.stats.bump_shard(name, "write_failovers")
                failure = error
                continue
            self.health.record_success(name)
            deleted.append(name)
        if not deleted:
            if failure is not None:
                raise failure
            assert not_found is not None
            raise not_found
        assert entry is not None
        return {
            "key": key,
            "shard": self.router.shard_name(key),
            "deleted_at": entry.deleted_at,
            "purge_after": entry.purge_after,
            "replicas": deleted,
        }

    def version_payload(self) -> Dict[str, object]:
        """``GET /version``: package version, container formats, engines."""
        return version_payload()

    def healthz(self) -> Dict[str, object]:
        status = "draining" if self.stats.draining else "ok"
        payload: Dict[str, object] = {"status": status, "shards": len(self.router)}
        down = self.health.down_shards()
        if down:
            payload["shards_down"] = down
        joining = self.router.joining
        if joining is not None:
            payload["resharding"] = joining
        return payload

    def stats_payload(self) -> Dict[str, object]:
        resharder = self.resharder
        return {
            "server": self.stats.as_json(),
            "flight": self.flight.stats(),
            "admission": self.admission.stats(),
            "clients": self.limiter.stats(),
            "shards": self.router.stats(),
            "replication": {
                "factor": self.router.replication,
                "health": self.health.snapshot(),
                "down": self.health.down_shards(),
                "joining": self.router.joining,
                "reshard": None if resharder is None else resharder.report.as_json(),
            },
        }

    def begin_reshard(
        self, store: ImageStore, name: str, throttle: float = 0.0
    ) -> Resharder:
        """Add ``store`` as a joining shard and return its migrator.

        Routing switches to the union membership immediately; the caller
        decides whether to drive the returned :class:`Resharder` inline
        (tests) or on its thread (:meth:`Resharder.start`, the CLI).
        """
        if store.cell_hook is None:
            store.cell_hook = context_cell_hook
        self.router.begin_reshard(store, name)
        resharder = Resharder(self.router, throttle=throttle)
        self.resharder = resharder
        return resharder

    def _engine(self) -> str:
        return self.router.stores[0].engine


class ReproServer:
    """The asyncio HTTP front-end bound to one :class:`ImageService`."""

    def __init__(
        self, service: ImageService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._draining = False

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=2**16,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.service.stats.mark_started()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, budget: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, then close.

        The SIGTERM path.  New requests on existing keep-alive connections
        are answered 503 + ``Connection: close``; admitted in-flight
        requests get up to ``budget`` seconds to complete; whatever is
        still parked afterwards is closed.  Returns ``True`` when every
        in-flight request finished within the budget.
        """
        if budget is None:
            budget = self.service.drain_budget
        self._draining = True
        self.service.stats.mark_draining()
        if self._server is not None:
            # close() stops accepting immediately; wait_closed() is NOT
            # awaited here — it blocks until every connection detaches,
            # and the lingering keep-alive connections only close at the
            # end of this very method.
            self._server.close()
            self._server = None
        deadline = Deadline(budget)
        while self.service.stats.in_flight > 0 and not deadline.expired:
            await asyncio.sleep(0.02)
        drained = self.service.stats.in_flight == 0
        for writer in list(self._connections):
            writer.close()
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        host = peer[0] if isinstance(peer, tuple) and peer else "unknown"
        limiter = self.service.limiter
        if not limiter.connect(host):
            self.service.stats.bump("connections_rejected")
            try:
                writer.write(
                    self._error_response(
                        429,
                        "client %s exceeded its connection cap" % host,
                        False,
                        retry_after=self.service.admission.retry_after,
                        code="shed",
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._connections.add(writer)
        context: Optional[RequestContext] = None
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        read_timeout=self.service.read_timeout,
                        idle_timeout=self.service.idle_timeout,
                    )
                except HttpProtocolError as error:
                    writer.write(
                        self._error_response(
                            error.status,
                            "%s: %s" % (type(error).__name__, error),
                            False,
                            code=classify_error(error.status, error),
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if self._draining:
                    writer.write(
                        self._error_response(
                            503, "server is draining", False, code="draining"
                        )
                    )
                    await writer.drain()
                    break
                status, body, content_type, extra, context = self._start_dispatch(
                    request, host
                )
                if context is not None:
                    # On a normal return the context is cleared; if the
                    # await is cancelled (shutdown) or the peer vanishes,
                    # the outer finally cancels it so the worker lets go.
                    # A streaming body keeps the context alive through the
                    # chunk writes so that same cancel path still works.
                    status, body, content_type, extra = await self._dispatch(
                        request, context
                    )
                    if not isinstance(body, StreamingBody):
                        context = None
                keep_alive = request.keep_alive and not self._draining
                if isinstance(body, StreamingBody):
                    completed = await self._write_stream(
                        writer, status, body, content_type, keep_alive, extra
                    )
                    context = None
                    if not completed or not keep_alive:
                        break
                    continue
                writer.write(
                    render_response(
                        status,
                        body,
                        content_type,
                        keep_alive=keep_alive,
                        extra_headers=extra,
                    )
                )
                await self._drain_writer(writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer went away mid-exchange; nothing to answer
        finally:
            if context is not None:
                # The handler died mid-dispatch (client gone, shutdown
                # cancel): release the worker at its next checkpoint.
                context.cancel()
            self._connections.discard(writer)
            limiter.disconnect(host)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # Shutdown cancels parked handlers mid-close; the connection
                # is gone either way, so ending the task quietly is correct.
                pass

    async def _drain_writer(self, writer: asyncio.StreamWriter) -> None:
        """Flush a response without letting a dead peer park the handler."""
        timeout = self.service.read_timeout
        if timeout is None:
            await writer.drain()
            return
        try:
            await asyncio.wait_for(writer.drain(), timeout)
        except asyncio.TimeoutError:
            raise ConnectionError("peer stopped reading mid-response") from None

    def _start_dispatch(
        self, request: HttpRequest, host: str
    ) -> Tuple[int, bytes, str, List[Tuple[str, str]], Optional[RequestContext]]:
        """Admission + rate limiting + deadline setup for one request.

        Returns either a finished shed response (context ``None``) or the
        :class:`RequestContext` the dispatch should run under.  Sheds are
        recorded in the stats like any other answered request.
        """
        admission = self.service.admission
        request_id = new_request_id()
        # Exemption is a property of the route table, not a hand-kept
        # path list; a request that matches no route is never exempt (the
        # 404/405 is produced inside the dispatch for stats' sake).
        try:
            route, _ = match_route(
                request.method, split_path(request.path), request.path
            )
            exempt = route.admission_exempt
        except ReproError:
            exempt = False
        if not exempt:
            shed: Optional[str] = None
            if not self.service.limiter.allow_request(host):
                self.service.stats.bump("rate_limited")
                shed = "client %s exceeded its request rate" % host
            elif not admission.try_admit():
                self.service.stats.bump("shed")
                shed = (
                    "server is past its in-flight watermark (%d active)"
                    % admission.active
                )
            if shed is not None:
                self.service.stats.request_started()
                self.service.stats.request_finished("shed", 0.0, 429)
                body = error_payload(
                    "OverloadedError: %s" % shed, "shed", request_id
                )
                extra = [
                    ("Retry-After", self._retry_after_text()),
                    ("x-repro-version", server_version()),
                ]
                return 429, body, "application/json", extra, None
        try:
            budget = self._deadline_budget(request)
        except ConfigError as error:
            if not exempt:
                admission.release()
            self.service.stats.request_started()
            self.service.stats.request_finished("other", 0.0, 400)
            status, body, content_type = self._error(400, error, request_id)
            return status, body, content_type, [], None
        context = RequestContext(
            Deadline(budget),
            endpoint=request.path,
            admitted=not exempt,
            request_id=request_id,
        )
        return 0, b"", "", [], context

    def _deadline_budget(self, request: HttpRequest) -> float:
        """Per-request budget: server default, tightened by x-deadline-ms."""
        default = self.service.default_deadline
        budget = default if default > 0 else math.inf
        header = request.headers.get("x-deadline-ms")
        if header is not None:
            try:
                requested_ms = int(header)
            except ValueError:
                raise ConfigError(
                    "x-deadline-ms %r is not an integer" % header
                ) from None
            if requested_ms <= 0:
                raise ConfigError("x-deadline-ms must be positive, got %d" % requested_ms)
            budget = min(budget, requested_ms / 1000.0)
        return budget

    def _retry_after_text(self) -> str:
        return "%d" % max(1, math.ceil(self.service.admission.retry_after))

    async def _dispatch(
        self, request: HttpRequest, context: RequestContext
    ) -> Tuple[int, Union[bytes, StreamingBody], str, List[Tuple[str, str]]]:
        """Route one admitted request; returns (status, body, type, headers)."""
        self.service.stats.request_started()
        started = time.perf_counter()
        endpoint = "other"
        status = 500
        request_id = context.request_id
        extra: List[Tuple[str, str]] = []
        try:
            try:
                endpoint, status, body, content_type = await self._route(
                    request, context
                )
            finally:
                if context.admitted:
                    self.service.admission.release()
        except OverloadedError as error:
            status, body, content_type = self._error(429, error, request_id)
            extra = [("Retry-After", self._retry_after_text())]
        except DeadlineExceededError as error:
            self.service.stats.bump("deadline_exceeded")
            status, body, content_type = self._error(504, error, request_id)
        except HttpProtocolError as error:
            status, body, content_type = self._error(error.status, error, request_id)
        except BlobNotFoundError as error:
            status, body, content_type = self._error(404, error, request_id)
        except (ConfigError, ImageFormatError) as error:
            status, body, content_type = self._error(400, error, request_id)
        except StoreError as error:
            # Every replica that could hold the bytes was unreadable —
            # that is a sick storage tier, not a client mistake.
            status, body, content_type = self._error(503, error, request_id)
        except ReproError as error:
            # Anything else the library raises on purpose (corrupt stored
            # stream, model state violation) is a server-side failure.
            status, body, content_type = self._error(500, error, request_id)
        except Exception as error:
            # Backstop for handler bugs: a request must ALWAYS get an
            # answer and the connection must keep serving — an unexpected
            # TypeError/KeyError dropping the socket with no status line
            # is strictly worse than an honest 500.
            status, body, content_type = self._error(500, error, request_id)
        finally:
            elapsed_ms = 1e3 * (time.perf_counter() - started)
            self.service.stats.request_finished(endpoint, elapsed_ms, status)
        extra.append(("x-repro-version", server_version()))
        return status, body, content_type, extra

    async def _route(
        self, request: HttpRequest, context: RequestContext
    ) -> Tuple[str, int, Union[bytes, StreamingBody], str]:
        """Dispatch one request from the declarative route table.

        The table (:data:`repro.serve.routes.ROUTES`) names the handler
        method; matching derives 404-vs-405 and converts path parameters.
        The proxy front-end subclasses this server and overrides the
        ``_handle_*`` methods only — the table, the matching and the
        error envelope are shared verbatim.
        """
        route, params = match_route(
            request.method, split_path(request.path), request.path
        )
        handler = getattr(self, "_handle_" + route.handler)
        status, body, content_type = await handler(request, context, params)
        return route.endpoint, status, body, content_type

    # ------------------------------------------------------------------ #
    # route handlers (one per route-table entry)
    # ------------------------------------------------------------------ #

    async def _handle_healthz(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        return 200, json_payload(self.service.healthz()), "application/json"

    async def _handle_stats(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        payload = await self._offload(context, self.service.stats_payload)
        return 200, json_payload(payload), "application/json"

    async def _handle_version(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        return 200, json_payload(self.service.version_payload()), "application/json"

    async def _handle_catalog(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        catalog_filter, limit, offset = self._parse_catalog_query(request)
        payload = await self._offload(
            context, self.service.catalog_payload, catalog_filter, limit, offset
        )
        return 200, json_payload(payload), "application/json"

    async def _handle_put_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        outcome = await self._offload(
            context,
            self.service.put_image,
            request.body,
            self._int_query(request, "stripes"),
            self._flag_query(request, "plane_delta"),
        )
        return 201, json_payload(outcome), "application/json"

    async def _handle_delete_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        ttl = self._float_query(request, "ttl")
        if ttl is not None and ttl < 0:
            raise ConfigError("ttl must be >= 0 seconds, got %s" % ttl)
        payload = await self._offload(
            context, self.service.delete_image, str(params["key"]), ttl
        )
        return 200, json_payload(payload), "application/json"

    async def _handle_get_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        body, content_type = await self._offload(
            context, self.service.get_image, str(params["key"])
        )
        return 200, body, content_type

    async def _handle_get_plane(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        body, content_type = await self._offload(
            context, self.service.get_plane, str(params["key"]), params["plane"]
        )
        return 200, body, content_type

    async def _handle_get_region(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        start, stop = params["range"]  # type: ignore[misc]
        if self._flag_query(request, "stream"):
            return await self._stream_region(context, key, start, stop)
        body, content_type = await self._offload(
            context, self.service.get_region, key, start, stop
        )
        return 200, body, content_type

    async def _handle_get_regions(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        ranges = self._parse_ranges_body(request.body)
        if self._flag_query(request, "stream"):
            return await self._stream_regions(context, key, ranges)
        payload = await self._offload(context, self.service.get_regions, key, ranges)
        return 200, json_payload(payload), "application/json"

    # ------------------------------------------------------------------ #
    # streaming responses
    # ------------------------------------------------------------------ #

    async def _stream_region(
        self, context: RequestContext, key: str, start: int, stop: int
    ) -> Tuple[int, "StreamingBody", str]:
        """Build the chunked response for ``GET .../region/a-b?stream=1``.

        The geometry plan (and any validation error it raises — unknown
        key, out-of-range stripes) is resolved *before* the status line is
        committed, so bad requests still get proper 4xx responses.  The
        per-stripe decodes run lazily, one offload per chunk: each fetch
        re-checks the shrinking deadline and coalesces with concurrent
        single-stripe GETs under the same single-flight key.
        """
        head, content_type, stripes = await self._offload(
            context, self.service.region_stream_plan, key, start, stop
        )

        async def chunks() -> AsyncIterator[bytes]:
            yield head
            for index in stripes:
                payload, _ = await self._offload(
                    context, self.service.get_region, key, index, index + 1
                )
                yield split_netpbm_payload(payload)[1]

        body = StreamingBody(chunks(), self._stream_release(context))
        return 200, body, content_type

    async def _stream_regions(
        self, context: RequestContext, key: str, ranges: Sequence[Tuple[int, int]]
    ) -> Tuple[int, "StreamingBody", str]:
        """Build the NDJSON chunked response for ``POST .../regions?stream=1``.

        One JSON line per requested range, in request order, each emitted
        as soon as its region decodes — the same objects the buffered
        endpoint packs into ``regions[]``, with the key inlined so every
        line is self-describing.  Ranges are validated against the stream
        header before the 200 is committed, so bad requests still get
        proper error responses; only failures *during* region decodes
        abort the stream.
        """
        normalised = [(int(a), int(b)) for a, b in ranges]
        await self._offload(context, self.service.validate_regions, key, normalised)

        async def chunks() -> AsyncIterator[bytes]:
            for start, stop in normalised:
                entry = await self._offload(
                    context, self.service.region_entry, key, start, stop
                )
                yield (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")

        body = StreamingBody(chunks(), self._stream_release(context))
        return 200, body, "application/x-ndjson"

    def _stream_release(self, context: RequestContext) -> Optional[Callable[[], None]]:
        """Transfer the admission slot from the dispatch to the stream.

        ``_dispatch`` releases the slot when the route returns; a streaming
        response is still burning workers at that point, so ownership moves
        to the :class:`StreamingBody` and the handler releases it when the
        stream finishes or aborts.
        """
        if not context.admitted:
            return None
        context.admitted = False
        return self.service.admission.release

    async def _write_stream(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: StreamingBody,
        content_type: str,
        keep_alive: bool,
        extra: List[Tuple[str, str]],
    ) -> bool:
        """Write one chunked response; ``False`` forces a connection close.

        Once the status line is on the wire a mid-stream failure cannot
        become an error response any more; the only honest signal left is
        an aborted chunked stream — the connection closes without the
        terminating chunk and the client's de-chunker reports truncation.
        """
        completed = False
        try:
            writer.write(
                render_stream_head(
                    status, content_type, keep_alive=keep_alive, extra_headers=extra
                )
            )
            await self._drain_writer(writer)
            async for chunk in body.chunks:
                if not chunk:
                    continue
                writer.write(encode_chunk(chunk))
                await self._drain_writer(writer)
            writer.write(STREAM_TERMINATOR)
            await self._drain_writer(writer)
            completed = True
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # the peer went away mid-stream; nothing left to answer
        except asyncio.CancelledError:
            raise
        except DeadlineExceededError:
            self.service.stats.bump("deadline_exceeded")
            self.service.stats.bump("stream_aborts")
        except Exception:
            self.service.stats.bump("stream_aborts")
        finally:
            closer = getattr(body.chunks, "aclose", None)
            if closer is not None:
                try:
                    await closer()
                except Exception:
                    pass
            if body.on_close is not None:
                body.on_close()
        return completed

    async def _offload(self, context: RequestContext, function, *args):
        """Run a blocking service operation on the worker pool, deadline-bound.

        The request's context is bound to the worker thread around the
        call, so store hooks, the chaos harness and single-flight waits
        can observe its deadline and cancellation.  If the budget lapses
        while the work is still running, the HTTP side stops waiting
        (answering 504) and cancels the context; the worker — which a
        thread pool cannot kill — aborts at its next cooperative
        checkpoint instead of burning to completion.
        """
        loop = asyncio.get_running_loop()

        def call():
            bind_context(context)
            try:
                context.check("request")  # do not start already-expired work
                return function(*args)
            finally:
                bind_context(None)

        future = loop.run_in_executor(self.service.executor, call)
        remaining = context.deadline.remaining
        if math.isinf(remaining):
            try:
                return await future
            except asyncio.CancelledError:
                context.cancel()
                future.add_done_callback(_consume_outcome)
                raise
        try:
            return await asyncio.wait_for(asyncio.shield(future), remaining)
        except asyncio.TimeoutError:
            context.cancel()
            # The worker is abandoned, not killed: it observes the cancel
            # at its next checkpoint and raises into a future nobody
            # awaits — consume that outcome so it never logs as lost.
            future.add_done_callback(_consume_outcome)
            raise DeadlineExceededError(
                "request ran past its %.3fs deadline in the decode offload"
                % remaining
            ) from None
        except asyncio.CancelledError:
            context.cancel()
            future.add_done_callback(_consume_outcome)
            raise

    # ------------------------------------------------------------------ #
    # request parsing helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _int_query(request: HttpRequest, name: str) -> Optional[int]:
        value = request.query.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            raise ConfigError("query parameter %s=%r is not an integer" % (name, value))

    @staticmethod
    def _flag_query(request: HttpRequest, name: str) -> bool:
        return request.query.get(name, "").lower() in ("1", "true", "yes", "on")

    @staticmethod
    def _float_query(request: HttpRequest, name: str) -> Optional[float]:
        value = request.query.get(name)
        if value is None:
            return None
        try:
            return float(value)
        except ValueError:
            raise ConfigError("query parameter %s=%r is not a number" % (name, value))

    @classmethod
    def _parse_catalog_query(
        cls, request: HttpRequest
    ) -> Tuple[CatalogFilter, int, int]:
        """``GET /catalog`` query → (filter, limit, offset), validated."""
        limit = cls._int_query(request, "limit")
        if limit is None:
            limit = 50
        offset = cls._int_query(request, "offset") or 0
        if limit < 0 or offset < 0:
            raise ConfigError(
                "limit and offset must be >= 0, got limit=%d offset=%d"
                % (limit, offset)
            )
        tags: Tuple[Tuple[str, Optional[str]], ...] = ()
        tag = request.query.get("tag")
        if tag is not None:
            tags = (CatalogFilter.parse_tag(tag),)
        catalog_filter = CatalogFilter(
            planes=cls._int_query(request, "planes"),
            engine=request.query.get("engine"),
            tags=tags,
            include_deleted=cls._flag_query(request, "include_deleted"),
            deleted_only=cls._flag_query(request, "deleted_only"),
        )
        return catalog_filter, limit, offset

    @staticmethod
    def _parse_ranges_body(body: bytes) -> List[Tuple[int, int]]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ConfigError("regions body must be JSON {'ranges': [[a, b], ...]}")
        ranges = document.get("ranges") if isinstance(document, dict) else document
        if not isinstance(ranges, list) or not ranges:
            raise ConfigError("regions body must list at least one [start, stop] pair")
        parsed: List[Tuple[int, int]] = []
        for entry in ranges:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ConfigError("each region must be a [start, stop] pair, got %r" % (entry,))
            try:
                parsed.append((int(entry[0]), int(entry[1])))
            except (TypeError, ValueError):
                # int(None)/int({}) raise TypeError, which the dispatch
                # error mapping deliberately does not catch — convert here
                # so malformed-but-valid JSON stays a 400, not a dropped
                # connection.
                raise ConfigError(
                    "each region must be a [start, stop] pair of integers, got %r"
                    % (entry,)
                ) from None
        return parsed

    @staticmethod
    def _error(
        status: int, error: BaseException, request_id: str = ""
    ) -> Tuple[int, bytes, str]:
        """One dispatched failure as the structured error envelope."""
        message = "%s: %s" % (type(error).__name__, error)
        code = classify_error(status, error)
        body = error_payload(message, code, request_id or new_request_id())
        return status, body, "application/json"

    @staticmethod
    def _error_response(
        status: int,
        message: str,
        keep_alive: bool,
        retry_after: Optional[float] = None,
        code: Optional[str] = None,
    ) -> bytes:
        """A complete connection-level error response (pre-dispatch path)."""
        extra = [("x-repro-version", server_version())]
        if retry_after is not None:
            extra.insert(0, ("Retry-After", "%d" % max(1, math.ceil(retry_after))))
        body = error_payload(
            message, code or classify_error(status), new_request_id()
        )
        return render_response(
            status,
            body,
            "application/json",
            keep_alive=keep_alive,
            extra_headers=extra,
        )


class ServerHandle:
    """A running server on a daemon thread (tests, benchmarks, smoke)."""

    def __init__(
        self,
        service: ImageService,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        server: ReproServer,
    ) -> None:
        self.service = service
        self._thread = thread
        self._loop = loop
        self._server = server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.host, self._server.port

    def drain(self, budget: Optional[float] = None, timeout: float = 30.0) -> bool:
        """Run a graceful drain on the server's loop; see ReproServer.drain.

        Returns ``True`` when every in-flight request finished within the
        budget.  The loop keeps running (so ``/stats`` scrapes of a
        drained server still work in tests) — call :meth:`stop` after.
        """
        future = asyncio.run_coroutine_threadsafe(
            self._server.drain(budget), self._loop
        )
        return future.result(timeout=timeout)

    @property
    def draining(self) -> bool:
        return self._server.draining

    def stop(self, close_service: bool = True) -> None:
        """Stop accepting, join the loop thread, optionally close stores."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
        if close_service:
            self.service.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    service: ImageService,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float = 10.0,
    server_class: type = ReproServer,
) -> ServerHandle:
    """Boot a :class:`ReproServer` on a fresh event loop in a daemon thread.

    Returns once the socket is bound (``handle.port`` is the real port —
    pass ``port=0`` for an ephemeral one).  In-process callers (tests, the
    load benchmark) get a real network server without blocking their own
    thread or loop.  ``server_class`` lets the proxy topology boot its
    :class:`~repro.serve.proxy.ReproProxy` subclass through the same path.
    """
    started = threading.Event()
    failure: List[BaseException] = []
    server = server_class(service, host, port)
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as error:  # pragma: no cover - bind failures
            failure.append(error)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # Idle keep-alive connections leave handler tasks parked on a
            # readline; cancel them so the loop closes without complaints.
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve-loop", daemon=True)
    thread.start()
    if not started.wait(timeout):  # pragma: no cover - never with a local bind
        raise StoreError("server failed to start within %.1fs" % timeout)
    if failure:
        raise failure[0]
    return ServerHandle(service, thread, loop, server)
