"""The network serving tier: asyncio HTTP over sharded image stores.

This package puts :mod:`repro.store` on the wire.  A hand-rolled
HTTP/1.1 front-end (stdlib :mod:`asyncio`, no framework) multiplexes many
concurrent clients over N :class:`~repro.store.store.ImageStore` shards:

* **routing** — rendezvous hashing of content keys over named shards
  (:mod:`repro.serve.router`), so resharding moves a minimal key fraction;
* **coalescing** — identical concurrent reads collapse into one decode
  through a thread-safe single-flight map (:mod:`repro.serve.flight`);
* **offload** — CPU-bound entropy decodes run on a worker pool, keeping
  the event loop free to accept and multiplex (:mod:`repro.serve.app`);
* **admission control** — in-flight work is bounded by watermarks and
  optional per-client caps; past the high watermark the server sheds
  with ``429`` + ``Retry-After`` (:mod:`repro.serve.admission`);
* **deadlines** — every request carries a budget into the worker pool
  and is abandoned cooperatively once it lapses
  (:mod:`repro.serve.deadline`);
* **replication + failover** — each key lives on the top-R rendezvous
  winners; writes fan out to every owner and reads fail over between
  replicas, preferring ones believed healthy
  (:mod:`repro.serve.health`);
* **live resharding** — growing N shards to N+1 is an operation, not a
  restart: a background migrator copies the moved key fraction while
  reads consult both old and new owners (:mod:`repro.serve.reshard`);
* **fault injection** — a chaos proxy wraps any blob backend with
  kill/stall/error/latency faults for resilience tests and the CI chaos
  jobs (:mod:`repro.serve.chaos`);
* **process topology** — under ``--topology proc`` every shard runs in
  its own worker process (own event loop, own decode pool — a real GIL
  escape) behind a thin routing proxy that supervises, health-checks
  and restarts the fleet (:mod:`repro.serve.worker`,
  :mod:`repro.serve.proxy`);
* **one API surface** — a declarative route table plus a structured
  error envelope (``{"error", "code", "request_id"}``) shared by both
  topologies and the docs gate (:mod:`repro.serve.routes`);
* **observability** — per-endpoint latency histograms, coalescing
  counters, hardening counters (shed, deadline_exceeded, …) and
  per-shard cache byte occupancy behind ``GET /stats``
  (:mod:`repro.serve.stats`).

The ``repro-serve`` console script (:mod:`repro.serve.cli`) boots the
tier; :class:`~repro.serve.client.ServeClient` is the pure-stdlib client
used by the tests, the CI smoke job and ``repro-bench serve``.
"""

from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    ClientLimiter,
    TokenBucket,
)
from repro.serve.app import (
    DEFAULT_DEADLINE_SECONDS,
    ImageService,
    ReproServer,
    ServerHandle,
    start_server_thread,
)
from repro.serve.chaos import FaultInjector
from repro.serve.client import ServeClient, error_from_envelope
from repro.serve.proxy import (
    ProxyService,
    RemoteShard,
    ReproProxy,
    WorkerUnreachableError,
    start_proxy_thread,
)
from repro.serve.routes import (
    ERROR_CODES,
    ROUTES,
    Route,
    classify_error,
    error_payload,
    match_route,
    route_templates,
)
from repro.serve.worker import WorkerGroup, WorkerProcess, WorkerSpec, WorkerSupervisor
from repro.serve.deadline import (
    Deadline,
    RequestContext,
    bind_context,
    context_cell_hook,
    current_context,
)
from repro.serve.flight import SingleFlight
from repro.serve.health import HealthProber, HealthTracker, ShardHealth
from repro.serve.reshard import Resharder, ReshardReport
from repro.serve.router import StoreRouter, rendezvous_score, rendezvous_shard
from repro.serve.stats import EndpointStats, LatencyHistogram, ServerStats

__all__ = [
    "AdmissionController",
    "ClientLimiter",
    "DEFAULT_DEADLINE_SECONDS",
    "DEFAULT_MAX_INFLIGHT",
    "Deadline",
    "ERROR_CODES",
    "FaultInjector",
    "HealthProber",
    "HealthTracker",
    "ImageService",
    "ProxyService",
    "ROUTES",
    "RemoteShard",
    "ReproProxy",
    "ReproServer",
    "RequestContext",
    "Resharder",
    "ReshardReport",
    "Route",
    "ServerHandle",
    "ShardHealth",
    "start_proxy_thread",
    "start_server_thread",
    "ServeClient",
    "SingleFlight",
    "StoreRouter",
    "TokenBucket",
    "WorkerGroup",
    "WorkerProcess",
    "WorkerSpec",
    "WorkerSupervisor",
    "WorkerUnreachableError",
    "bind_context",
    "classify_error",
    "context_cell_hook",
    "current_context",
    "error_from_envelope",
    "error_payload",
    "match_route",
    "rendezvous_score",
    "rendezvous_shard",
    "route_templates",
    "LatencyHistogram",
    "EndpointStats",
    "ServerStats",
]
