"""The network serving tier: asyncio HTTP over sharded image stores.

This package puts :mod:`repro.store` on the wire.  A hand-rolled
HTTP/1.1 front-end (stdlib :mod:`asyncio`, no framework) multiplexes many
concurrent clients over N :class:`~repro.store.store.ImageStore` shards:

* **routing** — rendezvous hashing of content keys over named shards
  (:mod:`repro.serve.router`), so resharding moves a minimal key fraction;
* **coalescing** — identical concurrent reads collapse into one decode
  through a thread-safe single-flight map (:mod:`repro.serve.flight`);
* **offload** — CPU-bound entropy decodes run on a worker pool, keeping
  the event loop free to accept and multiplex (:mod:`repro.serve.app`);
* **observability** — per-endpoint latency histograms, coalescing
  counters and per-shard cache byte occupancy behind ``GET /stats``
  (:mod:`repro.serve.stats`).

The ``repro-serve`` console script (:mod:`repro.serve.cli`) boots the
tier; :class:`~repro.serve.client.ServeClient` is the pure-stdlib client
used by the tests, the CI smoke job and ``repro-bench serve``.
"""

from repro.serve.app import ImageService, ReproServer, ServerHandle, start_server_thread
from repro.serve.client import ServeClient
from repro.serve.flight import SingleFlight
from repro.serve.router import StoreRouter, rendezvous_score, rendezvous_shard
from repro.serve.stats import EndpointStats, LatencyHistogram, ServerStats

__all__ = [
    "ImageService",
    "ReproServer",
    "ServerHandle",
    "start_server_thread",
    "ServeClient",
    "SingleFlight",
    "StoreRouter",
    "rendezvous_score",
    "rendezvous_shard",
    "LatencyHistogram",
    "EndpointStats",
    "ServerStats",
]
