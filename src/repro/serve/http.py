"""Hand-rolled HTTP/1.1 primitives for the asyncio serving tier.

The serving tier deliberately speaks a small, explicit subset of HTTP/1.1
over plain :mod:`asyncio` streams instead of pulling in a web framework:
the whole protocol surface the service needs is a request line, headers, a
``Content-Length`` body and keep-alive — small enough that owning the
parser keeps the dependency set at "stdlib + numpy" and makes the failure
modes (oversized headers, truncated bodies, malformed request lines)
explicit, typed and testable.

Limits are enforced during parsing, before any body is buffered:

* request line and header block are bounded by :data:`MAX_HEADER_BYTES`;
* bodies are bounded by :data:`MAX_BODY_BYTES` (``repro-serve`` stores
  compressed containers, so even large corpora fit comfortably);
* a request with ``Transfer-Encoding`` is rejected — the service only
  accepts ``Content-Length``-framed bodies;
* header and body reads are bounded in *time* as well as bytes: once the
  request line has landed, the rest of the request must arrive within
  ``read_timeout`` seconds, so a client that goes quiet mid-request (the
  slowloris shape, or a peer that died without closing) gets a typed
  ``408`` instead of parking the connection handler forever.

Protocol violations raise :class:`HttpProtocolError`, which carries the
HTTP status the connection handler should answer with before closing.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Awaitable, Dict, Iterable, Optional, Tuple, TypeVar
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.exceptions import ServeError

__all__ = [
    "HttpProtocolError",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "STATUS_REASONS",
    "json_payload",
    "read_request",
    "render_response",
    "render_stream_head",
    "encode_chunk",
    "STREAM_TERMINATOR",
]

_T = TypeVar("_T")

#: Upper bound on the request line plus the header block, in bytes.
MAX_HEADER_BYTES = 32 * 1024

#: Upper bound on a request body.  PUT bodies are compressed containers or
#: Netpbm images; 128 MiB covers even a full-resolution deep corpus image.
MAX_BODY_BYTES = 128 * 1024 * 1024

#: The status codes the service actually answers with.
STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(ServeError):
    """A request violated the supported HTTP/1.1 subset.

    ``status`` is the response code the connection handler should send
    before closing the connection (parsing state is unrecoverable).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message, status=status)


@dataclass
class HttpRequest:
    """One parsed request: the method/path/query triple plus body bytes."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection (1.1 default)."""
        return self.headers.get("connection", "").lower() != "close"


async def _timed(awaitable: Awaitable[_T], remaining: Optional[float], what: str) -> _T:
    """Await with a time budget; a lapse is a typed ``408`` protocol error."""
    if remaining is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, max(0.0, remaining))
    except asyncio.TimeoutError:
        raise HttpProtocolError(408, "timed out reading the %s" % what) from None


async def _read_line(
    reader: asyncio.StreamReader,
    budget: int,
    remaining: Optional[float] = None,
    what: str = "header block",
) -> bytes:
    """One CRLF (or bare LF) terminated line within the header budget."""
    try:
        line = await _timed(reader.readline(), remaining, what)
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpProtocolError(431, "header line exceeds the stream limit") from None
    if len(line) > budget:
        raise HttpProtocolError(431, "header block exceeds %d bytes" % MAX_HEADER_BYTES)
    return line


async def read_request(
    reader: asyncio.StreamReader,
    read_timeout: Optional[float] = None,
    idle_timeout: Optional[float] = None,
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on a clean EOF.

    A clean EOF (the peer closed between requests) is the normal end of a
    keep-alive connection, not an error.  Anything malformed raises
    :class:`HttpProtocolError` with the status to answer with.

    ``idle_timeout`` bounds the wait for the *start* of a request (an
    idle keep-alive connection): on lapse the connection is treated like
    a clean EOF and ``None`` is returned.  ``read_timeout`` bounds the
    rest — header lines and the body must arrive within that many seconds
    of the request line, or the parse fails with a typed ``408`` — a
    half-sent request must never park the handler forever.
    """
    budget = MAX_HEADER_BYTES
    try:
        line = await _timed(reader.readline(), idle_timeout, "request line")
    except HttpProtocolError:
        return None  # idle keep-alive lapsed between requests: close quietly
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpProtocolError(431, "header line exceeds the stream limit") from None
    if not line:
        return None
    budget -= len(line)
    expires_at = time.monotonic() + read_timeout if read_timeout is not None else None

    def remaining() -> Optional[float]:
        if expires_at is None:
            return None
        return expires_at - time.monotonic()
    try:
        text = line.decode("latin-1").strip()
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpProtocolError(400, "undecodable request line") from None
    if not text:
        raise HttpProtocolError(400, "empty request line")
    parts = text.split()
    if len(parts) != 3:
        raise HttpProtocolError(400, "malformed request line %r" % text)
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(400, "unsupported protocol version %r" % version)

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, budget, remaining(), "header block")
        if not line:
            raise HttpProtocolError(400, "connection closed inside the header block")
        budget -= len(line)
        if budget < 0:
            raise HttpProtocolError(431, "header block exceeds %d bytes" % MAX_HEADER_BYTES)
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, separator, value = text.partition(":")
        if not separator or not name.strip():
            raise HttpProtocolError(400, "malformed header line %r" % text)
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpProtocolError(501, "Transfer-Encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpProtocolError(400, "bad Content-Length %r" % length_text) from None
        if length < 0:
            raise HttpProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpProtocolError(
                413, "body of %d bytes exceeds the %d byte limit" % (length, MAX_BODY_BYTES)
            )
        try:
            body = await _timed(reader.readexactly(length), remaining(), "body")
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "connection closed inside the body") from None
    elif method in ("PUT", "POST"):
        raise HttpProtocolError(411, "%s requires a Content-Length" % method)

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(
        method=method,
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """Serialise one complete HTTP/1.1 response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, reason),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    lines.extend("%s: %s" % (name, value) for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


#: Final frame of a chunked response: zero-length chunk, no trailers.
STREAM_TERMINATOR = b"0\r\n\r\n"


def render_stream_head(
    status: int,
    content_type: str = "application/octet-stream",
    keep_alive: bool = True,
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """Serialise the head of a chunked (streaming) HTTP/1.1 response.

    The caller follows with :func:`encode_chunk` frames and closes the
    body with :data:`STREAM_TERMINATOR`.  An aborted stream — connection
    closed before the terminator — is the protocol-level truncation
    signal, since the status line is already on the wire when mid-stream
    work fails.
    """
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, reason),
        "Content-Type: %s" % content_type,
        "Transfer-Encoding: chunked",
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    lines.extend("%s: %s" % (name, value) for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """Frame one non-empty chunk (hex length, CRLF-delimited)."""
    return b"%x\r\n%s\r\n" % (len(data), data)


def json_payload(document: object) -> bytes:
    """The canonical JSON body encoding used by every endpoint."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")
