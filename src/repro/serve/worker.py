"""Shard worker processes: one store, one event loop, one decode pool each.

The multi-process topology (``repro-serve --topology proc``) escapes the
GIL by running every shard in its own OS process.  A worker is simply
the existing serving stack — :class:`~repro.serve.app.ImageService` over
one :class:`~repro.store.store.ImageStore`, fronted by
:class:`~repro.serve.app.ReproServer` — bound to a loopback port and
speaking the same HTTP API (the same route table, the same error
envelope) as the public tier.  The proxy (:mod:`repro.serve.proxy`)
terminates client connections and forwards over these loopback ports.

Process lifecycle lives here too:

* :class:`WorkerProcess` — spawn ``python -m repro.serve.worker`` with a
  per-shard store path, parse the ready line for the bound port, probe
  ``GET /version`` and refuse a worker whose package version mismatches
  the proxy's (a rolling deploy must not mix wire behaviours);
* :class:`WorkerGroup` — the W workers of one shard; readers pick a
  worker by key affinity (stable hash of the content key) so repeated
  reads of a key land on the same decoded cache and coalesce in the
  same single-flight map, and fail over to the group's other workers;
* :class:`WorkerSupervisor` — a monitor thread that restarts crashed
  workers with exponential backoff, and the SIGTERM drain cascade
  (workers drain their own in-flight work before exiting).

Workers of one shard share the shard's backend path — content-addressed
blobs written through any of them are readable by all — while each keeps
its own decoded/encoded caches and catalog view.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ConfigError, ServeError, StoreError
from repro.serve.app import DEFAULT_DEADLINE_SECONDS, ImageService, ReproServer
from repro.serve.client import ServeClient
from repro.serve.routes import server_version
from repro.store.cache import DEFAULT_CACHE_BYTES, DEFAULT_ENCODED_CACHE_BYTES
from repro.store.store import ImageStore

__all__ = [
    "WorkerProcess",
    "WorkerGroup",
    "WorkerSpec",
    "WorkerSupervisor",
    "build_worker_parser",
    "worker_main",
]

#: The machine-readable line a worker prints once its socket is bound.
READY_PREFIX = "repro-serve-worker: listening on http://"


# ---------------------------------------------------------------------- #
# the worker process entry point
# ---------------------------------------------------------------------- #


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="One shard worker of the multi-process serve topology "
        "(spawned by repro-serve --topology proc; not a public entry point).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--store", required=True, help="path of this shard's store")
    parser.add_argument("--shard-name", required=True)
    parser.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES)
    parser.add_argument(
        "--encoded-cache-bytes", type=int, default=DEFAULT_ENCODED_CACHE_BYTES
    )
    parser.add_argument(
        "--admission", choices=("always", "second-touch"), default="always"
    )
    parser.add_argument("--mmap", action="store_true")
    parser.add_argument("--engine", default="reference")
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--max-inflight", type=int, default=256)
    parser.add_argument("--deadline", type=float, default=DEFAULT_DEADLINE_SECONDS)
    parser.add_argument("--read-timeout", type=float, default=30.0)
    parser.add_argument("--idle-timeout", type=float, default=300.0)
    parser.add_argument("--drain-budget", type=float, default=10.0)
    return parser


async def _run_worker(args) -> int:
    store = ImageStore.open(
        Path(args.store),
        use_mmap=args.mmap,
        cache_bytes=args.cache_bytes,
        engine=args.engine,
        cache_admission=args.admission,
        encoded_cache_bytes=args.encoded_cache_bytes,
    )
    service = ImageService(
        [store],
        names=[args.shard_name],
        max_workers=args.threads,
        max_inflight=args.max_inflight,
        default_deadline=args.deadline,
        read_timeout=args.read_timeout if args.read_timeout > 0 else None,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        drain_budget=args.drain_budget,
    )
    server = ReproServer(service, args.host, args.port)
    loop = asyncio.get_running_loop()
    sigterm = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, sigterm.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
        pass
    try:
        await server.start()
        # The supervisor parses this exact line for the bound port.
        print(
            "%s%s:%d (shard %s, pid %d)"
            % (READY_PREFIX, args.host, server.port, args.shard_name, os.getpid()),
            flush=True,
        )
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(sigterm.wait())
        await asyncio.wait({serving, waiting}, return_when=asyncio.FIRST_COMPLETED)
        if sigterm.is_set():
            await server.drain()
        for task in (serving, waiting):
            task.cancel()
        await asyncio.gather(serving, waiting, return_exceptions=True)
    finally:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
            pass
        await server.stop()
        service.close()
    return 0


def worker_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of one shard worker (``python -m repro.serve.worker``)."""
    args = build_worker_parser().parse_args(argv)
    try:
        return asyncio.run(_run_worker(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


# ---------------------------------------------------------------------- #
# supervision (runs in the proxy process)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to (re)spawn one shard's worker processes."""

    shard_name: str
    store_path: Path
    backend: str = "fs"
    cache_bytes: int = DEFAULT_CACHE_BYTES
    encoded_cache_bytes: int = DEFAULT_ENCODED_CACHE_BYTES
    admission: str = "always"
    use_mmap: bool = False
    engine: str = "reference"
    threads: Optional[int] = None
    max_inflight: int = 256
    deadline: float = DEFAULT_DEADLINE_SECONDS
    read_timeout: float = 30.0
    idle_timeout: float = 300.0
    drain_budget: float = 10.0

    def argv(self) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.serve.worker",
            "--store",
            str(self.store_path),
            "--shard-name",
            self.shard_name,
            "--port",
            "0",
            "--cache-bytes",
            str(self.cache_bytes),
            "--encoded-cache-bytes",
            str(self.encoded_cache_bytes),
            "--admission",
            self.admission,
            "--engine",
            self.engine,
            "--max-inflight",
            str(self.max_inflight),
            "--deadline",
            str(self.deadline),
            "--read-timeout",
            str(self.read_timeout),
            "--idle-timeout",
            str(self.idle_timeout),
            "--drain-budget",
            str(self.drain_budget),
        ]
        if self.use_mmap:
            argv.append("--mmap")
        if self.threads is not None:
            argv.extend(["--threads", str(self.threads)])
        return argv


def _spawn_env() -> Dict[str, str]:
    """The child environment, with this package's source tree importable.

    A source checkout runs with ``PYTHONPATH=src``; spawning with the
    parent of the imported ``repro`` package prepended makes the worker
    importable regardless of how the proxy itself was launched.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing else package_root
        )
    return env


class WorkerProcess:
    """One spawned shard worker: process handle + endpoint + lifecycle."""

    def __init__(self, spec: WorkerSpec, index: int) -> None:
        self.spec = spec
        self.index = index
        self.host = "127.0.0.1"
        self.port = 0
        #: Bumped on every (re)spawn so connection pools drop stale sockets.
        self.generation = 0
        self.restarts = 0
        self.ready = False
        self.started_at = 0.0
        self._process: Optional[subprocess.Popen] = None
        self._lock = threading.Lock()

    @property
    def label(self) -> str:
        return "%s/worker-%d" % (self.spec.shard_name, self.index)

    @property
    def pid(self) -> Optional[int]:
        process = self._process
        return process.pid if process is not None else None

    @property
    def alive(self) -> bool:
        process = self._process
        return self.ready and process is not None and process.poll() is None

    def spawn(self, timeout: float = 30.0, expected_version: str = "") -> None:
        """Start the process, wait for the ready line, verify its version."""
        process = subprocess.Popen(
            self.spec.argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=_spawn_env(),
        )
        try:
            host, port = self._await_ready(process, timeout)
            self._verify_version(host, port, expected_version or server_version())
        except Exception:
            process.kill()
            process.wait(timeout=5)
            raise
        with self._lock:
            self._process = process
            self.host, self.port = host, port
            self.generation += 1
            self.ready = True
            self.started_at = time.monotonic()

    @staticmethod
    def _await_ready(process: subprocess.Popen, timeout: float) -> "tuple[str, int]":
        """Parse the ready line off the worker's stdout, bounded in time."""
        assert process.stdout is not None
        result: List[str] = []

        def pump() -> None:
            for raw in process.stdout:  # type: ignore[union-attr]
                line = raw.decode("utf-8", "replace")
                if not result and line.startswith(READY_PREFIX):
                    result.append(line)
                # Keep draining so the pipe can never fill and block the
                # worker; everything after the ready line is discarded.

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        deadline = time.monotonic() + timeout
        while not result:
            if process.poll() is not None:
                raise StoreError(
                    "worker exited with status %s before becoming ready"
                    % process.returncode
                )
            if time.monotonic() > deadline:
                raise StoreError("worker not ready within %.1fs" % timeout)
            time.sleep(0.01)
        address = result[0][len(READY_PREFIX) :].split(" ", 1)[0]
        host, _, port_text = address.partition(":")
        return host, int(port_text)

    @staticmethod
    def _verify_version(host: str, port: int, expected: str) -> None:
        """Refuse a worker whose package version differs from the proxy's."""
        with ServeClient(host, port, timeout=10.0) as client:
            reported = client.version().get("version")
        if reported != expected:
            raise ConfigError(
                "worker reports version %r but the proxy runs %r — refusing "
                "to mix wire behaviours behind one proxy" % (reported, expected)
            )

    def mark_down(self) -> None:
        self.ready = False

    def poll(self) -> Optional[int]:
        process = self._process
        return None if process is None else process.poll()

    def terminate(self) -> None:
        """Ask the worker to drain and exit (SIGTERM)."""
        process = self._process
        if process is not None and process.poll() is None:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - raced with exit
                pass

    def kill(self) -> None:
        process = self._process
        if process is not None and process.poll() is None:
            try:
                process.kill()
            except OSError:  # pragma: no cover - raced with exit
                pass

    def wait(self, timeout: float) -> bool:
        """True when the process has exited within ``timeout`` seconds."""
        process = self._process
        if process is None:
            return True
        try:
            process.wait(timeout=timeout)
            return True
        except subprocess.TimeoutExpired:
            return False


class WorkerGroup:
    """The W worker processes serving one shard."""

    def __init__(self, spec: WorkerSpec, count: int) -> None:
        if count < 1:
            raise ConfigError("a shard needs at least one worker, got %d" % count)
        self.spec = spec
        self.workers = [WorkerProcess(spec, index) for index in range(count)]

    @property
    def shard_name(self) -> str:
        return self.spec.shard_name

    def candidates(self, key: Optional[str] = None) -> List[WorkerProcess]:
        """Workers to try for one request, affinity-rotated and live-first.

        A keyed read starts at ``hash(key) % W`` so one key's repeated
        reads hit the same worker's decoded cache (and coalesce in its
        single-flight map); the rest of the group follows as failover.
        Workers believed down sort last — a crashed worker mid-restart
        is a last resort, not an immediate failure.
        """
        workers = self.workers
        if key is not None and len(workers) > 1:
            start = zlib.crc32(key.encode("utf-8")) % len(workers)
            workers = workers[start:] + workers[:start]
        return sorted(workers, key=lambda worker: not worker.alive)


class WorkerSupervisor:
    """Spawn, watch, restart and drain the whole worker fleet."""

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        workers_per_shard: int = 1,
        spawn_timeout: float = 30.0,
        restart_backoff: float = 0.25,
        max_backoff: float = 5.0,
        stable_after: float = 5.0,
        poll_interval: float = 0.1,
    ) -> None:
        self.groups = [WorkerGroup(spec, workers_per_shard) for spec in specs]
        self.spawn_timeout = spawn_timeout
        self.restart_backoff = restart_backoff
        self.max_backoff = max_backoff
        self.stable_after = stable_after
        self.poll_interval = poll_interval
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        #: Per-worker restart state: (next attempt at, current backoff).
        self._pending: Dict[WorkerProcess, "tuple[float, float]"] = {}
        self._lock = threading.Lock()

    @property
    def shard_names(self) -> List[str]:
        return [group.shard_name for group in self.groups]

    def start(self) -> "WorkerSupervisor":
        """Spawn every worker, verify versions, start the restart monitor."""
        try:
            for group in self.groups:
                for worker in group.workers:
                    worker.spawn(self.spawn_timeout)
        except Exception:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._watch, name="repro-worker-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def _watch(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            now = time.monotonic()
            for group in self.groups:
                for worker in group.workers:
                    self._tend(worker, now)

    def _tend(self, worker: WorkerProcess, now: float) -> None:
        if worker.poll() is None and worker.ready:
            return
        with self._lock:
            state = self._pending.get(worker)
            if state is None:
                # Fresh crash: schedule the first restart attempt.  A
                # worker that had been up for a while restarts with the
                # initial backoff again instead of an inherited penalty.
                worker.mark_down()
                uptime = now - worker.started_at
                backoff = self.restart_backoff
                self._pending[worker] = (now + backoff, backoff)
                del uptime
                return
            attempt_at, backoff = state
        if now < attempt_at:
            return
        try:
            worker.spawn(self.spawn_timeout)
        except Exception:
            next_backoff = min(backoff * 2.0, self.max_backoff)
            with self._lock:
                self._pending[worker] = (now + next_backoff, next_backoff)
            return
        worker.restarts += 1
        with self._lock:
            self._pending.pop(worker, None)

    def drain(self, budget: float) -> bool:
        """The SIGTERM cascade: every worker drains, stragglers are killed."""
        self._stopping.set()
        for group in self.groups:
            for worker in group.workers:
                worker.terminate()
        deadline = time.monotonic() + max(0.0, budget)
        drained = True
        for group in self.groups:
            for worker in group.workers:
                remaining = max(0.1, deadline - time.monotonic())
                if not worker.wait(remaining):
                    drained = False
                    worker.kill()
                    worker.wait(5.0)
                worker.mark_down()
        return drained

    def stop(self) -> None:
        """Tear the fleet down (monitor first, then the cascade)."""
        self._stopping.set()
        monitor = self._monitor
        if monitor is not None and monitor.is_alive():
            monitor.join(timeout=5)
        self.drain(budget=5.0)

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """Per-shard worker state for ``/stats`` aggregation."""
        report: Dict[str, List[Dict[str, object]]] = {}
        for group in self.groups:
            report[group.shard_name] = [
                {
                    "index": worker.index,
                    "pid": worker.pid,
                    "port": worker.port,
                    "up": worker.alive,
                    "restarts": worker.restarts,
                }
                for worker in group.workers
            ]
        return report


if __name__ == "__main__":  # pragma: no cover
    sys.exit(worker_main())
