"""Live resharding: migrate the moved key set while the tier keeps serving.

Rendezvous hashing promises that growing N shards to N+1 moves only the
keys whose new top-R owner set includes the new shard — an expected
``1/(N+1)`` fraction.  :class:`Resharder` turns that promise into an
*operation* instead of a restart:

1. the new shard is added as **joining** membership
   (:meth:`~repro.serve.router.StoreRouter.begin_reshard`) — placement
   immediately includes it, but every key's
   :meth:`~repro.serve.router.StoreRouter.owners` set stays the union of
   the old and new owner sets, so reads consult both sides of the
   migration and writes land everywhere a reader may look;
2. the moved key set is enumerated through the shard **catalogs** (the
   same metadata the data plane queries — no blind backend scans);
3. each moved key is **copied first** (blob bytes plus its catalog row,
   tombstone state included) to every new owner missing it, and only
   then removed from owners the new membership dropped — and the removal
   uses :meth:`~repro.store.store.ImageStore.purge_if_unpinned`, so a
   replica serving an in-flight read is never yanked away (the key is
   retried on a later pass);
4. once no key is pending, the membership is committed
   (:meth:`~repro.serve.router.StoreRouter.complete_reshard`).

The copy-then-delete order plus the owner-set union is the whole
correctness argument: **at every intermediate state each key is readable
through at least one consulted owner** — the property
``tests/serve/test_reshard_properties.py`` checks step by step.

Faults during migration (a shard dies mid-copy) are recorded per key and
retried on the next pass rather than aborting the whole reshard; the
:class:`ReshardReport` says exactly what moved, what was deleted, and
what is still pending.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigError, StoreError
from repro.serve.router import StoreRouter
from repro.store.store import ImageStore

__all__ = ["Resharder", "ReshardReport"]


@dataclass
class ReshardReport:
    """Outcome of one :meth:`Resharder.run` (or a partial set of steps)."""

    joining: str
    moved: int = 0
    copies: int = 0
    deletions: int = 0
    pinned_skips: int = 0
    passes: int = 0
    completed: bool = False
    seconds: float = 0.0
    errors: List[str] = field(default_factory=list)

    def as_json(self) -> Dict[str, object]:
        return {
            "joining": self.joining,
            "moved": self.moved,
            "copies": self.copies,
            "deletions": self.deletions,
            "pinned_skips": self.pinned_skips,
            "passes": self.passes,
            "completed": self.completed,
            "seconds": self.seconds,
            "errors": list(self.errors),
        }


class Resharder:
    """Background migrator for one in-flight N -> N+1 reshard.

    Construct it *after* :meth:`StoreRouter.begin_reshard`; drive it with
    :meth:`run` (typically on a thread — :meth:`start`) or key-by-key with
    :meth:`migrate_key` (what the property test does to examine every
    intermediate state).

    ``throttle`` sleeps between key migrations so a large migration leaks
    bandwidth to foreground traffic instead of monopolising the backend.
    """

    def __init__(
        self,
        router: StoreRouter,
        throttle: float = 0.0,
        max_passes: int = 8,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if router.joining is None:
            raise ConfigError(
                "no reshard is in progress — call router.begin_reshard first"
            )
        if throttle < 0:
            raise ConfigError("throttle must be >= 0, got %r" % throttle)
        if max_passes < 1:
            raise ConfigError("max_passes must be >= 1, got %d" % max_passes)
        self.router = router
        self.throttle = throttle
        self.max_passes = max_passes
        self._sleeper = sleeper
        self.report = ReshardReport(joining=router.joining)
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def _members(self) -> List[Tuple[str, ImageStore]]:
        return list(zip(self.router.names, self.router.stores))

    def _final_owner_names(self, key: str) -> List[str]:
        """The key's owners once the new membership is committed."""
        names = self.router.names
        return [names[index] for index in self.router.shards_for(key)]

    def _catalog_keys(self) -> List[str]:
        """Every key any shard's catalog knows about (tombstones included)."""
        seen: Dict[str, None] = {}
        for _name, store in self._members():
            for entry in store.catalog.entries():
                seen.setdefault(entry.key, None)
        return list(seen)

    def pending_keys(self) -> List[str]:
        """Keys not yet settled under the new membership.

        A key is pending while a final owner is missing its bytes or a
        shard the new membership dropped still holds them.
        """
        members = self._members()
        pending: List[str] = []
        for key in self._catalog_keys():
            final = set(self._final_owner_names(key))
            try:
                holders = {
                    name for name, store in members if store.contains(key)
                }
            except StoreError:
                # A shard that cannot even answer `contains` is handled at
                # migration time; flag the key so it is looked at.
                pending.append(key)
                continue
            if holders and (final - holders or holders - final):
                pending.append(key)
        return pending

    def moved_keys(self) -> List[str]:
        """Keys whose owner set the joining shard changed (the ~1/(N+1))."""
        joining = self.report.joining
        return [
            key
            for key in self._catalog_keys()
            if joining in self._final_owner_names(key)
        ]

    # ------------------------------------------------------------------ #
    # migration
    # ------------------------------------------------------------------ #

    def migrate_key(self, key: str) -> bool:
        """Settle one key under the new membership; copy before delete.

        Returns ``True`` when the key is fully settled (every final owner
        holds it, nobody else does).  A pinned source (an in-flight read)
        or a faulted shard leaves the key unsettled for a later pass —
        never unreachable, because deletion strictly follows copying.
        """
        members = self._members()
        by_name = dict(members)
        final_names = self._final_owner_names(key)
        holders: Dict[str, ImageStore] = {}
        for name, store in members:
            try:
                if store.contains(key):
                    holders[name] = store
            except StoreError:
                continue
        if not holders:
            return True  # nothing stored (catalog-only remnant); nothing to move
        settled = True

        missing = [name for name in final_names if name not in holders]
        if missing:
            payload: Optional[bytes] = None
            entry = None
            # Prefer reading the blob from the best-ranked holder; fall
            # back across replicas exactly like the serving read path.
            for name, _store in self.router.owners(key):
                source = holders.get(name)
                if source is None:
                    continue
                try:
                    payload = source.backend.get(key)
                    entry = source.catalog.get(key)
                    break
                except StoreError as error:
                    self.report.errors.append("%s: read from %s: %s" % (key, name, error))
            if payload is None:
                for name, source in holders.items():
                    try:
                        payload = source.backend.get(key)
                        entry = source.catalog.get(key)
                        break
                    except StoreError as error:
                        self.report.errors.append("%s: read from %s: %s" % (key, name, error))
            if payload is None:
                return False
            for name in missing:
                target = by_name[name]
                try:
                    target.backend.put(key, payload)
                    if entry is not None:
                        # record_put stores a fresh entry verbatim —
                        # created_at, tags and tombstone state all travel.
                        target.catalog.record_put(entry)
                        if entry.deleted_at is not None:
                            ttl = max(
                                0.0, (entry.purge_after or entry.deleted_at) - entry.deleted_at
                            )
                            target.catalog.mark_deleted(key, entry.deleted_at, ttl)
                    self.report.copies += 1
                except StoreError as error:
                    self.report.errors.append("%s: copy to %s: %s" % (key, name, error))
                    settled = False

        # Deletion comes strictly after copying, and only once every final
        # owner actually holds the key — a failed copy must never cost the
        # last reachable replica.
        if not settled:
            return False
        for name, store in holders.items():
            if name in final_names:
                continue
            try:
                if store.purge_if_unpinned(key) is None:
                    self.report.pinned_skips += 1
                    settled = False
                else:
                    self.report.deletions += 1
            except StoreError as error:
                self.report.errors.append("%s: delete from %s: %s" % (key, name, error))
                settled = False
        return settled

    def completion_blockers(self) -> List[str]:
        """Keys that would become unreachable if membership committed now.

        Committing removes the *old* owner set from reads, so a key blocks
        completion while its bytes exist somewhere but on no final owner.
        Keys that merely have stale extra holders are not blockers — they
        stay readable from their final owners and only waste bytes.
        """
        members = self._members()
        blockers: List[str] = []
        for key in self._catalog_keys():
            final = set(self._final_owner_names(key))
            holders = set()
            for name, store in members:
                try:
                    if store.contains(key):
                        holders.add(name)
                except StoreError:
                    continue
            if holders and not (holders & final):
                blockers.append(key)
        return blockers

    def run(self, complete: bool = True) -> ReshardReport:
        """Migrate every pending key (multi-pass), then commit membership.

        Passes repeat until a sweep finds nothing pending or ``max_passes``
        is exhausted (pinned keys and faulted shards are retried across
        passes).  With ``complete=True`` (default) the joining shard is
        committed as a full member afterwards — by then every settled key
        is already served from its final owners, and an unsettled leftover
        is still a *copy* problem (extra bytes), never a reachability one.
        """
        began = time.perf_counter()
        self.report.moved = len(self.moved_keys())
        for _pass in range(self.max_passes):
            self.report.passes += 1
            pending = self.pending_keys()
            if not pending:
                break
            for key in pending:
                self.migrate_key(key)
                if self.throttle > 0.0:
                    self._sleeper(self.throttle)
        if complete:
            blockers = self.completion_blockers()
            if blockers:
                # Leaving the joining membership in place keeps every
                # blocked key reachable through its old owners; a later
                # run() (or operator intervention) can finish the job.
                self.report.errors.append(
                    "not committing membership: %d key(s) have no final-owner "
                    "replica yet" % len(blockers)
                )
            else:
                self.router.complete_reshard()
                self.report.completed = True
        self.report.seconds = time.perf_counter() - began
        return self.report

    def start(self) -> threading.Thread:
        """Run the migration on a daemon thread; returns the thread."""
        if self._thread is not None:
            raise ConfigError("this resharder is already running")
        thread = threading.Thread(
            target=self.run, name="repro-serve-reshard", daemon=True
        )
        self._thread = thread
        thread.start()
        return thread
