"""Request deadlines propagated from the HTTP layer into decode work.

Every admitted request gets a :class:`RequestContext`: a monotonic
:class:`Deadline` plus a cancellation latch.  The context rides into the
thread-pool offload via a thread-local binding (:func:`bind_context` /
:func:`current_context`), so blocking store work — which cannot be killed
from the event loop — can *cooperatively* abandon itself:

* the store's per-cell decode hook calls :meth:`RequestContext.check`
  between cells, so a decode whose client timed out or disconnected stops
  at the next cell boundary instead of burning a worker to completion;
* the chaos fault injector polls :attr:`RequestContext.should_abort`
  inside stalls, so a stalled backend read frees its worker as soon as
  the request is abandoned;
* coalesced single-flight followers wait at most their own
  :attr:`Deadline.remaining`, so one slow leader cannot park a follower
  past that follower's budget.

Expiry and cancellation both raise
:class:`~repro.exceptions.DeadlineExceededError` — the caller is gone (or
about to be told 504) either way, and the distinction is carried in the
message only.

Clocks are injectable for tests; production code uses
:func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.exceptions import DeadlineExceededError

__all__ = [
    "Deadline",
    "RequestContext",
    "bind_context",
    "current_context",
    "context_cell_hook",
]


class Deadline:
    """A monotonic point in time a request must not run past.

    Immutable after construction and safe to consult from any thread —
    the HTTP layer creates it on the event loop and the decode worker
    checks it from the pool.  Built on ``time.monotonic`` so wall-clock
    jumps can neither extend nor cut a request's budget.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self, budget_seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        self._expires_at = clock() + budget_seconds

    @property
    def remaining(self) -> float:
        """Seconds left before expiry, clamped at 0."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            raise DeadlineExceededError("%s ran past its deadline" % what)


class RequestContext:
    """One request's deadline plus its abandonment latch.

    ``cancel()`` is called by the HTTP layer when it stops waiting for
    the offloaded work (offload timeout, client disconnect): the worker
    thread the request is burning observes it at the next cooperative
    checkpoint and aborts.
    """

    __slots__ = ("deadline", "endpoint", "admitted", "request_id", "_cancelled")

    def __init__(
        self,
        deadline: Deadline,
        endpoint: str = "other",
        admitted: bool = True,
        request_id: str = "",
    ) -> None:
        self.deadline = deadline
        self.endpoint = endpoint
        #: Whether this request holds an admission slot (health/stats do not).
        self.admitted = admitted
        #: The id stamped into this request's error envelopes, if any.
        self.request_id = request_id
        self._cancelled = threading.Event()

    def cancel(self) -> None:
        """Mark the request abandoned (the answer has nowhere to go)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def should_abort(self) -> bool:
        """Whether in-progress work for this request is now pointless."""
        return self._cancelled.is_set() or self.deadline.expired

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the work is pointless."""
        if self._cancelled.is_set():
            raise DeadlineExceededError("%s was abandoned by its client" % what)
        self.deadline.check(what)


_LOCAL = threading.local()


def bind_context(context: Optional[RequestContext]) -> None:
    """Bind ``context`` to the current thread (``None`` unbinds).

    The serving tier's offload wrapper binds the request's context around
    the blocking service call, so store-level hooks can find it without
    the store depending on the serve package's call signatures.
    """
    _LOCAL.context = context


def current_context() -> Optional[RequestContext]:
    """The :class:`RequestContext` bound to this thread, if any."""
    return getattr(_LOCAL, "context", None)


def context_cell_hook() -> None:
    """Per-cell decode checkpoint: abort abandoned or expired requests.

    Installed as :attr:`repro.store.store.ImageStore.cell_hook` by the
    serving tier — the seam that makes deadline expiry actually stop a
    multi-cell decode instead of merely timing out the HTTP response.
    """
    context = current_context()
    if context is not None:
        context.check("decode")
