"""Health-checked shard membership: hysteresis tracking + active probing.

With replication (:class:`~repro.serve.router.StoreRouter` with ``R > 1``)
a down shard stops being an outage and becomes a routing decision: reads
should *prefer* replicas believed healthy and only fall back to a sick one
as a last resort.  Two cooperating pieces provide the belief:

:class:`HealthTracker`
    A passive, thread-safe state machine fed by outcome reports — from
    the read path (every replica attempt reports success or failure) and
    from the prober.  Transitions carry **hysteresis**: a shard is marked
    ``down`` only after ``down_after`` *consecutive* failures and marked
    ``up`` again only after ``up_after`` consecutive successes, so one
    flaky operation neither ejects a shard nor instantly re-admits a
    flapping one.

:class:`HealthProber`
    A daemon thread that issues a cheap backend probe
    (``backend.contains``) against every shard on an interval and feeds
    the tracker.  Probes run under their own
    :class:`~repro.serve.deadline.RequestContext` with a short deadline,
    so a *stalled* backend (the chaos harness's favourite fault) fails
    the probe instead of wedging the prober thread — the same
    cooperative-abandonment seam the request path uses.  Active probing
    is what notices a shard's **recovery** while traffic is avoiding it:
    passive reports alone would keep a down shard down forever once the
    failover loop stops sending it reads.

Neither piece ever *blocks* routing: a down shard is deprioritised, not
removed — if every healthy replica misses, the read path still tries the
sick ones, so health flapping can degrade latency but never correctness.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.exceptions import ConfigError, StoreError
from repro.serve.deadline import Deadline, RequestContext, bind_context
from repro.serve.router import StoreRouter

__all__ = ["HealthProber", "HealthTracker", "ShardHealth"]

T = TypeVar("T")

#: Key the active prober asks the backend about.  ``contains`` on a key
#: that does not exist is the cheapest data-path operation every backend
#: supports, and it rides through fault injectors like any real read.
PROBE_KEY = "__repro_health_probe__"


class ShardHealth:
    """Mutable health record of one shard (guarded by the tracker lock)."""

    __slots__ = (
        "up",
        "consecutive_failures",
        "consecutive_successes",
        "failures",
        "successes",
        "transitions",
        "changed_at",
    )

    def __init__(self) -> None:
        self.up = True
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.failures = 0
        self.successes = 0
        self.transitions = 0
        self.changed_at: Optional[float] = None

    def as_json(self) -> Dict[str, object]:
        return {
            "up": self.up,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "failures": self.failures,
            "successes": self.successes,
            "transitions": self.transitions,
            "changed_at": self.changed_at,
        }


class HealthTracker:
    """Per-shard up/down state with hysteresis on both transitions.

    Every shard starts ``up`` — an unknown shard must be routable, and the
    first ``down_after`` failures flip it fast enough.  Names never seen
    before are registered lazily, so a shard joining through a live
    reshard is tracked the moment anything reports about it.
    """

    def __init__(
        self,
        names: Optional[List[str]] = None,
        down_after: int = 3,
        up_after: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if down_after < 1:
            raise ConfigError("down_after must be >= 1, got %d" % down_after)
        if up_after < 1:
            raise ConfigError("up_after must be >= 1, got %d" % up_after)
        self.down_after = down_after
        self.up_after = up_after
        self._clock = clock
        self._lock = threading.Lock()
        self._shards: Dict[str, ShardHealth] = {}
        for name in names or []:
            self._shards[name] = ShardHealth()

    def _entry(self, name: str) -> ShardHealth:
        entry = self._shards.get(name)
        if entry is None:
            entry = self._shards[name] = ShardHealth()
        return entry

    def record_success(self, name: str) -> None:
        """One successful operation (or probe) against ``name``."""
        with self._lock:
            entry = self._entry(name)
            entry.successes += 1
            entry.consecutive_failures = 0
            entry.consecutive_successes += 1
            if not entry.up and entry.consecutive_successes >= self.up_after:
                entry.up = True
                entry.transitions += 1
                entry.changed_at = self._clock()

    def record_failure(self, name: str) -> None:
        """One failed operation (or probe) against ``name``."""
        with self._lock:
            entry = self._entry(name)
            entry.failures += 1
            entry.consecutive_successes = 0
            entry.consecutive_failures += 1
            if entry.up and entry.consecutive_failures >= self.down_after:
                entry.up = False
                entry.transitions += 1
                entry.changed_at = self._clock()

    def is_up(self, name: str) -> bool:
        """Current belief about ``name`` (unknown shards default to up)."""
        with self._lock:
            entry = self._shards.get(name)
            return True if entry is None else entry.up

    def down_shards(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, entry in self._shards.items() if not entry.up
            )

    def prefer_healthy(self, candidates: List[Tuple[str, T]]) -> List[Tuple[str, T]]:
        """Stable-partition ``(name, value)`` pairs: believed-up first.

        Down shards stay in the list (as a last resort) so health state
        can only reorder a read's replica attempts, never hide data.
        """
        with self._lock:
            states = {name: entry.up for name, entry in self._shards.items()}
        healthy = [pair for pair in candidates if states.get(pair[0], True)]
        sick = [pair for pair in candidates if not states.get(pair[0], True)]
        return healthy + sick

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-shard health for ``/stats`` (state, streaks, transitions)."""
        with self._lock:
            return {name: entry.as_json() for name, entry in self._shards.items()}


class HealthProber:
    """Background prober feeding a :class:`HealthTracker` from real I/O.

    One daemon thread sweeps every shard each ``interval`` seconds.  Each
    probe binds a throwaway :class:`RequestContext` whose deadline is
    ``timeout``, so backends that honour the cooperative-abandonment seam
    (the chaos injector's stall loop does) raise out of a hung probe
    instead of blocking the sweep; a probe that still exceeds its budget
    is counted as a failure either way.
    """

    def __init__(
        self,
        router: StoreRouter,
        tracker: HealthTracker,
        interval: float = 2.0,
        timeout: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ConfigError("probe interval must be positive, got %r" % interval)
        if timeout <= 0:
            raise ConfigError("probe timeout must be positive, got %r" % timeout)
        self.router = router
        self.tracker = tracker
        self.interval = interval
        self.timeout = timeout
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._probes = 0
        self._probe_failures = 0

    def probe_once(self) -> Dict[str, bool]:
        """Probe every shard once; returns the per-shard outcome."""
        outcomes: Dict[str, bool] = {}
        names = self.router.names
        stores = self.router.stores
        for name, store in zip(names, stores):
            context = RequestContext(Deadline(self.timeout), endpoint="probe")
            bind_context(context)
            try:
                store.backend.contains(PROBE_KEY)
                ok = not context.deadline.expired
            except StoreError:
                ok = False
            except Exception:
                # A probe must never take the prober thread down; any
                # unexpected backend explosion is simply an unhealthy answer.
                ok = False
            finally:
                bind_context(None)
            outcomes[name] = ok
            with self._lock:
                self._probes += 1
                if not ok:
                    self._probe_failures += 1
            if ok:
                self.tracker.record_success(name)
            else:
                self.tracker.record_failure(name)
        return outcomes

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.probe_once()

    def start(self) -> "HealthProber":
        """Start the sweep thread (idempotent); returns self for chaining."""
        with self._lock:
            if self._thread is not None:
                return self
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-health", daemon=True
            )
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=join_timeout)
            self._thread = None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"probes": self._probes, "probe_failures": self._probe_failures}
