"""The routing proxy of the multi-process topology (``--topology proc``).

:class:`ReproProxy` is the public face of a fleet of shard worker
processes (:mod:`repro.serve.worker`).  It subclasses
:class:`~repro.serve.app.ReproServer` and overrides only the data-plane
``_handle_*`` methods — the route table, the 404/405 derivation, the
error envelope, admission control, deadlines, streaming framing and the
drain sequence are all inherited, so the two topologies cannot drift
apart request by request.

Placement reuses the exact machinery of the in-process tier:
:class:`~repro.serve.router.StoreRouter` ranks owner shards per key
(rendezvous hashing, union membership mid-reshard) and
:class:`~repro.serve.health.HealthTracker` reorders them by believed
health — except the "stores" are :class:`RemoteShard` handles that speak
HTTP over loopback instead of decoding locally.  Reads fail over
shard-by-shard exactly like :meth:`ImageService._read_replicas` (404
only when *every* owner missed, a store failure outranks a 404), and
within one shard a keyed request prefers its affinity worker — the same
worker every time for a given key, so worker-local caches and
single-flight coalescing keep working — before trying the shard's other
workers.

What the proxy forwards it forwards **verbatim**: a worker's error
envelope (with the worker's ``request_id``) and its response bytes pass
through untouched, and streamed regions are re-framed chunk-for-chunk as
they arrive, so first-chunk latency survives the extra hop.  What the
proxy must compute itself — the content key for ``PUT`` routing — it
does by encoding Netpbm bodies in its own thread pool, then fans the
encoded container out to every owner shard.

The remaining request budget rides to workers as ``x-deadline-ms``, so
a proxy-side deadline bounds worker-side decode work too.
"""

from __future__ import annotations

import asyncio
import hashlib
import io
import json
import math
from collections import deque
from typing import (
    AsyncIterator,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
    cast,
)
from urllib.parse import quote

from concurrent.futures import ThreadPoolExecutor

from repro.core.cellgrid import encode_grid
from repro.core.config import CodecConfig
from repro.exceptions import (
    ConfigError,
    DeadlineExceededError,
    ServeError,
    StoreError,
)
from repro.imaging.pnm import read_image
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    AdmissionController,
    ClientLimiter,
)
from repro.serve.app import (
    DEFAULT_DEADLINE_SECONDS,
    ImageService,
    ReproServer,
    ServerHandle,
    StreamingBody,
    _NETPBM_MAGICS,
    start_server_thread,
)
from repro.serve.client import ServeClient
from repro.serve.deadline import RequestContext
from repro.serve.flight import SingleFlight
from repro.serve.health import HealthTracker
from repro.serve.http import HttpRequest, json_payload
from repro.serve.router import StoreRouter
from repro.serve.routes import version_payload
from repro.serve.stats import ServerStats
from repro.serve.worker import WorkerGroup, WorkerProcess, WorkerSupervisor
from repro.store.catalog import CatalogFilter
from repro.store.store import ImageStore

__all__ = [
    "ProxyService",
    "RemoteShard",
    "ReproProxy",
    "WorkerUnreachableError",
    "start_proxy_thread",
]


class WorkerUnreachableError(StoreError):
    """No worker process of a shard could be reached (or all timed out).

    A :class:`~repro.exceptions.StoreError` on purpose: the shard-level
    failover and error mapping treat an unreachable worker fleet exactly
    like an unreadable local store — try the next replica, and answer
    ``503``/``upstream_unhealthy`` only when every owner is gone.
    """


class WorkerReply:
    """One buffered worker response: status + headers + verbatim body."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", "application/octet-stream")


def _render_request(
    method: str, target: str, body: bytes, extra: List[Tuple[str, str]]
) -> bytes:
    lines = [
        "%s %s HTTP/1.1" % (method, target),
        "host: 127.0.0.1",
        "content-length: %d" % len(body),
    ]
    lines.extend("%s: %s" % pair for pair in extra)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def _read_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("worker closed the connection before answering")
    parts = status_line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError("worker sent a malformed status line %r" % status_line)
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("worker closed the connection mid-headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers


async def _read_body(reader: asyncio.StreamReader, headers: Dict[str, str]) -> bytes:
    if headers.get("transfer-encoding", "").lower() == "chunked":
        pieces: List[bytes] = []
        while True:
            piece = await _read_chunk(reader)
            if piece is None:
                return b"".join(pieces)
            pieces.append(piece)
    length = int(headers.get("content-length", "0"))
    return await reader.readexactly(length) if length else b""


async def _read_chunk(reader: asyncio.StreamReader) -> Optional[bytes]:
    """One chunked-transfer frame; ``None`` on the terminating frame."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("worker closed the connection mid-stream")
    size = int(line.strip().split(b";")[0], 16)
    if size == 0:
        await reader.readline()  # the blank line after the 0-size frame
        return None
    piece = await reader.readexactly(size)
    await reader.readexactly(2)  # the frame's trailing CRLF
    return piece


class RemoteShard:
    """One shard's worker group, spoken to over loopback HTTP.

    Duck-types just enough of :class:`~repro.store.store.ImageStore` for
    :class:`~repro.serve.router.StoreRouter` to rank it (routing only
    ever touches shard *names*) and close it.  Keep-alive connections
    are pooled per worker and tagged with the worker's spawn generation,
    so a restarted worker's stale sockets are discarded instead of
    retried.
    """

    def __init__(
        self,
        group: WorkerGroup,
        request_timeout: float = 30.0,
        pool_size: int = 32,
    ) -> None:
        self.group = group
        self.request_timeout = request_timeout
        self.pool_size = pool_size
        self._pools: Dict[
            int, Deque[Tuple[int, asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}

    @property
    def name(self) -> str:
        return self.group.shard_name

    # -- ImageStore surface the router touches ------------------------- #

    def stats(self) -> Dict[str, object]:  # pragma: no cover - stats overridden
        return {}

    def close(self) -> None:
        for pool in self._pools.values():
            while pool:
                _, _, writer = pool.popleft()
                _close_writer(writer)

    # -- connection pool ------------------------------------------------ #

    def _checkout(
        self, worker: WorkerProcess
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        pool = self._pools.get(worker.index)
        while pool:
            generation, reader, writer = pool.popleft()
            if generation == worker.generation and not writer.is_closing():
                return reader, writer
            _close_writer(writer)
        return None

    def _checkin(
        self,
        worker: WorkerProcess,
        generation: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        pool = self._pools.setdefault(worker.index, deque())
        if generation != worker.generation or writer.is_closing():
            _close_writer(writer)
        elif len(pool) >= self.pool_size:
            _close_writer(writer)
        else:
            pool.append((generation, reader, writer))

    # -- request plumbing ----------------------------------------------- #

    def _attempt_budget(self, context: Optional[RequestContext]) -> float:
        budget = self.request_timeout
        if context is not None:
            remaining = context.deadline.remaining
            if not math.isinf(remaining):
                if remaining <= 0:
                    raise DeadlineExceededError(
                        "request deadline lapsed before the worker call"
                    )
                budget = min(budget, remaining)
        return budget

    @staticmethod
    def _forward_headers(context: Optional[RequestContext]) -> List[Tuple[str, str]]:
        if context is None:
            return []
        remaining = context.deadline.remaining
        if math.isinf(remaining):
            return []
        return [("x-deadline-ms", "%d" % max(1, int(remaining * 1000)))]

    async def _request_worker(
        self,
        worker: WorkerProcess,
        method: str,
        target: str,
        body: bytes,
        context: Optional[RequestContext],
    ) -> WorkerReply:
        payload = _render_request(method, target, body, self._forward_headers(context))
        for pooled in (True, False):
            conn = self._checkout(worker) if pooled else None
            if pooled and conn is None:
                continue
            generation = worker.generation
            if conn is None:
                reader, writer = await asyncio.open_connection(worker.host, worker.port)
            else:
                reader, writer = conn
            try:
                writer.write(payload)
                await writer.drain()
                status, headers = await _read_head(reader)
                reply_body = await _read_body(reader, headers)
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError):
                _close_writer(writer)
                if conn is not None:
                    continue  # a stale pooled socket; retry on a fresh one
                raise
            if headers.get("connection", "").lower() == "close":
                _close_writer(writer)
            else:
                self._checkin(worker, generation, reader, writer)
            return WorkerReply(status, headers, reply_body)
        raise ConnectionError("worker %s has no usable connection" % worker.label)

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        context: Optional[RequestContext] = None,
        key: Optional[str] = None,
    ) -> WorkerReply:
        """One request against this shard, failing over across its workers.

        Transport failures, timeouts and retryable statuses (a draining
        or shedding worker: 429/503) move on to the group's next worker;
        everything else — including worker-side 4xx/500 envelopes — is
        the shard's answer.  Raises :class:`WorkerUnreachableError` when
        no worker produced an answer at all.
        """
        last_error: Optional[BaseException] = None
        retryable: Optional[WorkerReply] = None
        for worker in self.group.candidates(key):
            budget = self._attempt_budget(context)
            try:
                reply = await asyncio.wait_for(
                    self._request_worker(worker, method, target, body, context),
                    budget,
                )
            except asyncio.TimeoutError:
                if context is not None and context.deadline.expired:
                    raise DeadlineExceededError(
                        "worker call ran past the request deadline"
                    ) from None
                last_error = StoreError(
                    "worker %s did not answer within %.1fs" % (worker.label, budget)
                )
                continue
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError) as error:
                last_error = error
                continue
            if reply.status in (429, 503):
                retryable = reply
                continue
            return reply
        if retryable is not None:
            return retryable
        raise WorkerUnreachableError(
            "no worker of shard %s answered %s %s (%s)"
            % (self.name, method, target, last_error)
        )

    async def broadcast(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        context: Optional[RequestContext] = None,
        key: Optional[str] = None,
    ) -> List[WorkerReply]:
        """The same request to *every* worker of the group, best effort.

        Used for mutations that must land in every worker's catalog view
        (tombstones): workers of one shard share the blob backend but
        keep independent catalogs, so a delete applied to just one would
        let a sibling worker resurrect the key on failover reads.
        """
        replies: List[WorkerReply] = []
        for worker in self.group.candidates(key):
            try:
                budget = self._attempt_budget(context)
                replies.append(
                    await asyncio.wait_for(
                        self._request_worker(worker, method, target, body, context),
                        budget,
                    )
                )
            except DeadlineExceededError:
                raise
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ValueError,
            ):
                continue
        return replies

    async def open_stream(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        context: Optional[RequestContext] = None,
        key: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Union[bytes, AsyncIterator[bytes]]]:
        """A streaming request: the head is read eagerly, the body lazily.

        A chunked 2xx answer returns an async iterator of the *de-framed*
        chunk payloads (the proxy re-frames them for its own client);
        anything else is buffered and returned as bytes so error
        envelopes forward verbatim and failover can keep trying.
        """
        last_error: Optional[BaseException] = None
        retryable: Optional[Tuple[int, Dict[str, str], bytes]] = None
        for worker in self.group.candidates(key):
            budget = self._attempt_budget(context)
            try:
                opened = await asyncio.wait_for(
                    self._open_stream_worker(worker, method, target, body, context),
                    budget,
                )
            except asyncio.TimeoutError:
                if context is not None and context.deadline.expired:
                    raise DeadlineExceededError(
                        "worker call ran past the request deadline"
                    ) from None
                last_error = StoreError(
                    "worker %s did not answer within %.1fs" % (worker.label, budget)
                )
                continue
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError) as error:
                last_error = error
                continue
            status, headers, payload = opened
            if isinstance(payload, bytes) and status in (429, 503):
                retryable = (status, headers, payload)
                continue
            return opened
        if retryable is not None:
            return retryable
        raise WorkerUnreachableError(
            "no worker of shard %s answered %s %s (%s)"
            % (self.name, method, target, last_error)
        )

    async def _open_stream_worker(
        self,
        worker: WorkerProcess,
        method: str,
        target: str,
        body: bytes,
        context: Optional[RequestContext],
    ) -> Tuple[int, Dict[str, str], Union[bytes, AsyncIterator[bytes]]]:
        payload = _render_request(method, target, body, self._forward_headers(context))
        for pooled in (True, False):
            conn = self._checkout(worker) if pooled else None
            if pooled and conn is None:
                continue
            generation = worker.generation
            if conn is None:
                reader, writer = await asyncio.open_connection(worker.host, worker.port)
            else:
                reader, writer = conn
            try:
                writer.write(payload)
                await writer.drain()
                status, headers = await _read_head(reader)
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError):
                _close_writer(writer)
                if conn is not None:
                    continue
                raise
            chunked = headers.get("transfer-encoding", "").lower() == "chunked"
            if status < 300 and chunked:
                pieces = self._stream_pieces(worker, generation, reader, writer)
                return status, headers, pieces
            try:
                reply_body = await _read_body(reader, headers)
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError):
                _close_writer(writer)
                if conn is not None:
                    continue
                raise
            if headers.get("connection", "").lower() == "close":
                _close_writer(writer)
            else:
                self._checkin(worker, generation, reader, writer)
            return status, headers, reply_body
        raise ConnectionError("worker %s has no usable connection" % worker.label)

    async def _stream_pieces(
        self,
        worker: WorkerProcess,
        generation: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> AsyncIterator[bytes]:
        """De-framed chunk payloads of one in-flight worker stream.

        The connection returns to the pool only after the terminating
        frame; an abandoned or failed iteration closes it instead, so a
        half-read stream can never be mistaken for an idle socket.
        """
        completed = False
        try:
            while True:
                piece = await asyncio.wait_for(
                    _read_chunk(reader), self.request_timeout
                )
                if piece is None:
                    completed = True
                    return
                yield piece
        finally:
            if completed:
                self._checkin(worker, generation, reader, writer)
            else:
                _close_writer(writer)


def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
    except (RuntimeError, OSError):  # pragma: no cover - loop already gone
        pass


def _merge_counters(target: Dict[str, object], source: Dict[str, object]) -> None:
    """Recursively sum numeric counters of ``source`` into ``target``.

    Dicts merge key-by-key, ints and floats add (bools are flags, not
    counters — first writer wins), anything else keeps the first value
    seen.  Used to aggregate worker ``/stats`` documents into one
    fleet-wide view with the same shape.
    """
    for key, value in source.items():
        if isinstance(value, dict):
            node = target.setdefault(key, {})
            if isinstance(node, dict):
                _merge_counters(node, cast(Dict[str, object], value))
        elif isinstance(value, bool):
            target.setdefault(key, value)
        elif isinstance(value, (int, float)):
            current = target.get(key)
            if isinstance(current, (int, float)) and not isinstance(current, bool):
                target[key] = current + value
            else:
                target[key] = value
        else:
            target.setdefault(key, value)


class ProxyService:
    """The proxy-side counterpart of :class:`ImageService`.

    Carries the exact attribute surface :class:`ReproServer` touches
    (router, health, stats, admission, limiter, executor, timeouts) so
    the inherited connection handling, admission control and dispatch
    run unmodified — but the "stores" behind the router are
    :class:`RemoteShard` handles, and the control-plane documents
    (``/stats``, ``/catalog``) are aggregated from the worker fleet.
    """

    def __init__(
        self,
        supervisor: WorkerSupervisor,
        replication: int = 1,
        engine: str = "reference",
        default_stripes: int = 4,
        max_workers: Optional[int] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        shed_low: Optional[int] = None,
        retry_after: float = 1.0,
        max_connections_per_client: int = 0,
        client_rate: float = 0.0,
        client_burst: Optional[float] = None,
        default_deadline: float = DEFAULT_DEADLINE_SECONDS,
        read_timeout: Optional[float] = 30.0,
        idle_timeout: Optional[float] = None,
        drain_budget: float = 10.0,
        health_down_after: int = 3,
        health_up_after: int = 2,
        worker_timeout: float = 30.0,
    ) -> None:
        self.supervisor = supervisor
        self.remote_shards = [
            RemoteShard(group, request_timeout=worker_timeout)
            for group in supervisor.groups
        ]
        self.router = StoreRouter(
            cast("List[ImageStore]", self.remote_shards),
            supervisor.shard_names,
            replication=replication,
        )
        self.health = HealthTracker(
            names=self.router.names,
            down_after=health_down_after,
            up_after=health_up_after,
        )
        self.resharder = None
        self.flight = SingleFlight()  # unused for data; kept for surface parity
        self.stats = ServerStats()
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-proxy"
        )
        self.engine_name = engine
        self.default_stripes = default_stripes
        self.admission = AdmissionController(
            high=max_inflight, low=shed_low, retry_after=retry_after
        )
        self.limiter = ClientLimiter(
            max_connections=max_connections_per_client,
            rate=client_rate,
            burst=client_burst,
        )
        self.default_deadline = max(0.0, default_deadline)
        self.read_timeout = read_timeout
        self.idle_timeout = idle_timeout
        self.drain_budget = drain_budget
        self.worker_timeout = worker_timeout

    def close(self) -> None:
        self.executor.shutdown(wait=True)
        self.router.close()
        self.supervisor.stop()

    # -- the proxy's own blocking work (runs on its executor) ----------- #

    def encode_body(
        self, body: bytes, stripes: Optional[int], plane_delta: bool
    ) -> Tuple[bytes, bool]:
        """A PUT body as the container to fan out, plus whether we encoded.

        Routing needs the content key before any worker is picked, and
        the key is the hash of the *encoded* stream — so Netpbm bodies
        are encoded here at the proxy, exactly as the in-process service
        would, and only ready containers travel to the owners.
        """
        if not body:
            raise ConfigError("PUT body is empty — expected a Netpbm image or container")
        if body[:2] in _NETPBM_MAGICS:
            image = read_image(io.BytesIO(body))
            config = CodecConfig.hardware(bit_depth=image.bit_depth)
            stream, _ = encode_grid(
                image,
                config,
                engine=self.engine_name,
                stripes=stripes if stripes is not None else self.default_stripes,
                plane_delta=plane_delta,
            )
            return stream, True
        return body, False

    def version_payload(self) -> Dict[str, object]:
        return version_payload()

    def healthz(self) -> Dict[str, object]:
        status = "draining" if self.stats.draining else "ok"
        payload: Dict[str, object] = {"status": status, "shards": len(self.router)}
        down = self.health.down_shards()
        if down:
            payload["shards_down"] = down
        return payload

    def stats_payload(self) -> Dict[str, object]:
        """The fleet-wide ``/stats``: proxy front-end + aggregated workers.

        ``server``/``admission``/``clients`` are the proxy's own (they
        describe the public socket); ``flight`` and ``shards`` are the
        worker documents merged counter-by-counter, so coalescing and
        cache behaviour stay observable per shard no matter how many
        processes serve it; ``workers`` reports the process fleet (pids,
        ports, restart counts) for operators and the chaos drill.
        """
        flight: Dict[str, object] = {}
        sections: List[Dict[str, object]] = []
        for group in self.supervisor.groups:
            merged: Dict[str, object] = {}
            for worker in group.workers:
                document = self._scrape_worker(worker)
                if document is None:
                    continue
                worker_flight = document.get("flight")
                if isinstance(worker_flight, dict):
                    _merge_counters(flight, worker_flight)
                for shard_section in document.get("shards", ()):
                    if isinstance(shard_section, dict):
                        _merge_counters(merged, shard_section)
            merged["name"] = group.shard_name
            merged["joining"] = False
            sections.append(merged)
        return {
            "server": self.stats.as_json(),
            "flight": flight,
            "admission": self.admission.stats(),
            "clients": self.limiter.stats(),
            "shards": sections,
            "replication": {
                "factor": self.router.replication,
                "health": self.health.snapshot(),
                "down": self.health.down_shards(),
                "joining": None,
                "reshard": None,
            },
            "workers": self.supervisor.snapshot(),
        }

    def _scrape_worker(self, worker: WorkerProcess) -> Optional[Dict[str, object]]:
        if not worker.alive:
            return None
        try:
            with ServeClient(worker.host, worker.port, timeout=5.0) as client:
                return client.stats()
        except (ServeError, OSError):
            return None

    def catalog_payload(
        self,
        filter: CatalogFilter,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Dict[str, object]:
        """The merged catalog across every shard's worker fleet.

        Workers of one shard keep independent catalog views (each records
        the puts it handled), so the group's listing is the union of its
        workers', deduplicated per key newest-first.  Shards merge and
        paginate exactly like the in-process service — same sort key,
        same pushed-down ``offset + limit`` bound per worker, same
        ``{"entries", "total", "offset"}`` document.
        """
        bound = None if limit is None else offset + limit
        tag: Optional[str] = None
        if filter.tags:
            tag_key, tag_value = filter.tags[0]
            tag = tag_key if tag_value is None else "%s=%s" % (tag_key, tag_value)
        total = 0
        merged_rows: List[Dict[str, object]] = []
        for group in self.supervisor.groups:
            by_key: Dict[str, Dict[str, object]] = {}
            group_total = 0
            duplicates = 0
            answered = False
            for worker in group.workers:
                if not worker.alive:
                    continue
                try:
                    with ServeClient(worker.host, worker.port, timeout=10.0) as client:
                        document = client.catalog(
                            limit=bound,
                            offset=0,
                            tag=tag,
                            planes=filter.planes,
                            engine=filter.engine,
                            include_deleted=filter.include_deleted,
                            deleted_only=filter.deleted_only,
                        )
                except (ServeError, OSError):
                    continue
                answered = True
                group_total += int(cast(int, document.get("total", 0)))
                for row in document.get("entries", ()):
                    key = str(row["key"])
                    known = by_key.get(key)
                    if known is None:
                        by_key[key] = row
                    else:
                        duplicates += 1
                        if row.get("created_at", 0) > known.get("created_at", 0):
                            by_key[key] = row
            if not answered:
                raise StoreError(
                    "no worker of shard %s answered the catalog query"
                    % group.shard_name
                )
            total += max(0, group_total - duplicates)
            merged_rows.extend(by_key.values())
        merged_rows.sort(
            key=lambda row: (-cast(float, row.get("created_at", 0.0)), str(row["key"]))
        )
        end = None if limit is None else offset + limit
        return {"entries": merged_rows[offset:end], "total": total, "offset": offset}


class ReproProxy(ReproServer):
    """The proxy front-end: :class:`ReproServer` with forwarding handlers.

    Everything above the handlers — connection handling, the route
    table, 404/405 derivation, admission, deadlines, the error envelope,
    chunked streaming, drain — is inherited.  Control-plane routes
    (``/healthz``, ``/stats``, ``/version``, ``/catalog``) are inherited
    too: they call the service's blocking methods, which
    :class:`ProxyService` implements by aggregation.
    """

    def __init__(
        self, service: ProxyService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__(cast(ImageService, service), host, port)
        self.proxy_service = service

    # -- shard-level forwarding with replica failover -------------------- #

    async def _forward(
        self,
        context: RequestContext,
        key: str,
        method: str,
        target: str,
        body: bytes = b"",
    ) -> WorkerReply:
        """Forward one keyed read, failing over across owner shards.

        Mirrors :meth:`ImageService._read_replicas`: owners in rendezvous
        order reordered healthy-first, an unreachable or erroring shard
        moves on to the next owner, a 404 only becomes the answer when
        every owner missed, and a shard-level failure outranks a 404.
        """
        service = self.proxy_service
        candidates = service.health.prefer_healthy(service.router.owners(key))
        not_found: Optional[WorkerReply] = None
        failure: Optional[WorkerReply] = None
        unreachable: Optional[StoreError] = None
        for position, (name, shard) in enumerate(candidates):
            if position:
                context.check("replica failover")
            remote = cast(RemoteShard, shard)
            try:
                reply = await remote.request(
                    method, target, body=body, context=context, key=key
                )
            except DeadlineExceededError:
                raise
            except StoreError as error:
                service.health.record_failure(name)
                service.stats.bump("failovers")
                service.stats.bump_shard(name, "failovers")
                unreachable = error
                continue
            if reply.status == 404:
                service.health.record_success(name)
                not_found = reply
                continue
            if reply.status >= 500:
                service.health.record_failure(name)
                service.stats.bump("failovers")
                service.stats.bump_shard(name, "failovers")
                failure = reply
                continue
            service.health.record_success(name)
            return reply
        if failure is not None:
            return failure
        if unreachable is not None:
            raise unreachable
        assert not_found is not None
        return not_found

    async def _forward_stream(
        self,
        context: RequestContext,
        key: str,
        method: str,
        target: str,
        body: bytes = b"",
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        """Forward a ``?stream=1`` request, passing chunks through as-is.

        Failover happens *before* the first chunk: once a worker's 200
        head is accepted the stream is committed, and a mid-stream worker
        death aborts the client's stream (truncated chunked body) exactly
        as an in-process decode failure would.
        """
        service = self.proxy_service
        candidates = service.health.prefer_healthy(service.router.owners(key))
        not_found: Optional[Tuple[int, bytes, str]] = None
        failure: Optional[Tuple[int, bytes, str]] = None
        unreachable: Optional[StoreError] = None
        for position, (name, shard) in enumerate(candidates):
            if position:
                context.check("replica failover")
            remote = cast(RemoteShard, shard)
            try:
                status, headers, payload = await remote.open_stream(
                    method, target, body=body, context=context, key=key
                )
            except DeadlineExceededError:
                raise
            except StoreError as error:
                service.health.record_failure(name)
                service.stats.bump("failovers")
                service.stats.bump_shard(name, "failovers")
                unreachable = error
                continue
            content_type = headers.get("content-type", "application/octet-stream")
            if isinstance(payload, bytes):
                if status == 404:
                    service.health.record_success(name)
                    not_found = (status, payload, content_type)
                    continue
                if status >= 500:
                    service.health.record_failure(name)
                    service.stats.bump("failovers")
                    service.stats.bump_shard(name, "failovers")
                    failure = (status, payload, content_type)
                    continue
                service.health.record_success(name)
                return status, payload, content_type
            service.health.record_success(name)
            streaming = StreamingBody(payload, self._stream_release(context))
            return status, streaming, content_type
        if failure is not None:
            return failure
        if unreachable is not None:
            raise unreachable
        assert not_found is not None
        return not_found

    # -- data-plane handlers (the only overrides) ------------------------ #

    async def _handle_put_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        service = self.proxy_service
        stream, encoded = await self._offload(
            context,
            service.encode_body,
            request.body,
            self._int_query(request, "stripes"),
            self._flag_query(request, "plane_delta"),
        )
        key = hashlib.sha256(stream).hexdigest()
        replicas: List[str] = []
        failure: Optional[WorkerReply] = None
        unreachable: Optional[StoreError] = None
        for name, shard in service.router.owners(key):
            remote = cast(RemoteShard, shard)
            try:
                reply = await remote.request(
                    "PUT", "/images", body=stream, context=context, key=key
                )
            except DeadlineExceededError:
                raise
            except StoreError as error:
                service.health.record_failure(name)
                service.stats.bump("write_failovers")
                service.stats.bump_shard(name, "write_failovers")
                unreachable = error
                continue
            if reply.status == 201:
                service.health.record_success(name)
                replicas.append(name)
                continue
            if 400 <= reply.status < 500:
                # The request itself is bad — equally bad on every owner;
                # the worker's envelope forwards verbatim.
                return reply.status, reply.body, reply.content_type
            service.health.record_failure(name)
            service.stats.bump("write_failovers")
            service.stats.bump_shard(name, "write_failovers")
            failure = reply
        if not replicas:
            if failure is not None:
                return failure.status, failure.body, failure.content_type
            raise StoreError(
                "no worker of any owner shard accepted key %s (%s)"
                % (key, unreachable)
            )
        outcome = {
            "key": key,
            "shard": service.router.shard_name(key),
            "bytes": len(stream),
            "encoded": encoded,
            "replicas": replicas,
        }
        return 201, json_payload(outcome), "application/json"

    async def _handle_delete_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        service = self.proxy_service
        key = str(params["key"])
        ttl = self._float_query(request, "ttl")
        if ttl is not None and ttl < 0:
            raise ConfigError("ttl must be >= 0 seconds, got %s" % ttl)
        target = "/images/" + quote(key, safe="")
        if ttl is not None:
            target += "?ttl=%s" % ttl
        deleted: List[str] = []
        entry: Optional[Dict[str, object]] = None
        not_found: Optional[WorkerReply] = None
        failure: Optional[WorkerReply] = None
        unreachable = False
        for name, shard in service.router.owners(key):
            remote = cast(RemoteShard, shard)
            # Broadcast: every worker of the group keeps its own catalog,
            # and the tombstone must land in all of them or a failover
            # read through a sibling worker would resurrect the key.
            replies = await remote.broadcast(
                "DELETE", target, context=context, key=key
            )
            if not replies:
                service.health.record_failure(name)
                service.stats.bump("write_failovers")
                service.stats.bump_shard(name, "write_failovers")
                unreachable = True
                continue
            succeeded = [reply for reply in replies if reply.status == 200]
            if succeeded:
                service.health.record_success(name)
                deleted.append(name)
                if entry is None:
                    try:
                        entry = json.loads(succeeded[0].body.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError):
                        entry = None
                continue
            if all(reply.status == 404 for reply in replies):
                service.health.record_success(name)
                not_found = replies[0]
                continue
            service.health.record_failure(name)
            service.stats.bump("write_failovers")
            service.stats.bump_shard(name, "write_failovers")
            failure = replies[0]
        if not deleted:
            if failure is not None:
                return failure.status, failure.body, failure.content_type
            if not_found is not None:
                return not_found.status, not_found.body, not_found.content_type
            assert unreachable
            raise StoreError(
                "no worker of any owner shard answered the delete of %s" % key
            )
        payload = {
            "key": key,
            "shard": service.router.shard_name(key),
            "deleted_at": None if entry is None else entry.get("deleted_at"),
            "purge_after": None if entry is None else entry.get("purge_after"),
            "replicas": deleted,
        }
        return 200, json_payload(payload), "application/json"

    async def _handle_get_image(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        reply = await self._forward(
            context, key, "GET", "/images/" + quote(key, safe="")
        )
        return reply.status, reply.body, reply.content_type

    async def _handle_get_plane(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        target = "/images/%s/plane/%d" % (quote(key, safe=""), cast(int, params["plane"]))
        reply = await self._forward(context, key, "GET", target)
        return reply.status, reply.body, reply.content_type

    async def _handle_get_region(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        start, stop = cast(Tuple[int, int], params["range"])
        target = "/images/%s/region/%d-%d" % (quote(key, safe=""), start, stop)
        if self._flag_query(request, "stream"):
            return await self._forward_stream(context, key, "GET", target + "?stream=1")
        reply = await self._forward(context, key, "GET", target)
        return reply.status, reply.body, reply.content_type

    async def _handle_get_regions(
        self, request: HttpRequest, context: RequestContext, params: Dict[str, object]
    ) -> Tuple[int, Union[bytes, StreamingBody], str]:
        key = str(params["key"])
        target = "/images/%s/regions" % quote(key, safe="")
        if self._flag_query(request, "stream"):
            return await self._forward_stream(
                context, key, "POST", target + "?stream=1", body=request.body
            )
        reply = await self._forward(context, key, "POST", target, body=request.body)
        return reply.status, reply.body, reply.content_type


def start_proxy_thread(
    service: ProxyService, host: str = "127.0.0.1", port: int = 0, timeout: float = 10.0
) -> ServerHandle:
    """Boot a :class:`ReproProxy` on a daemon thread (tests, smokes)."""
    return start_server_thread(
        cast(ImageService, service),
        host,
        port,
        timeout,
        server_class=ReproProxy,
    )
