"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
