"""Compare a ``repro-bench --json`` run against the committed baseline.

The CI performance-regression gate runs::

    python -m repro.cli engines throughput --size 64 --json BENCH_ci.json
    python benchmarks/compare_baseline.py benchmarks/baseline.json BENCH_ci.json

and fails when

* any ``bpp`` value differs from the baseline (the streams are
  deterministic, so any drift is a format/compression change that must be
  reviewed and re-baselined deliberately), or
* any ``mb_per_s`` value regresses by more than the tolerance (default
  25%; runners are noisy, real slowdowns are not), or
* an experiment present in the baseline is missing or errored in the
  current run.

Baselines are recorded on whatever machine ran the bench last, and CI
runners differ in absolute speed, so throughput values are **normalised
before comparison**: within each experiment, every ``mb_per_s`` value is
divided by that run's mean reference-engine rate (the keys named
``reference`` or ``*/reference``).  A uniformly slower runner cancels out;
a real regression of the fast engine relative to the reference engine — the
thing this gate protects — does not.  Experiments without a reference-engine
anchor fall back to absolute comparison.

Throughput *improvements* never fail the gate.  To re-baseline after an
intentional change, re-run the bench command above and commit the fresh
JSON as ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List


def _reference_anchor(mb_per_s: dict) -> float:
    """Mean reference-engine rate of one experiment (0.0 when absent)."""
    rates = [
        value
        for key, value in mb_per_s.items()
        if (key == "reference" or key.endswith("/reference")) and value > 0.0
    ]
    return sum(rates) / len(rates) if rates else 0.0


def compare(baseline: dict, current: dict, tolerance: float) -> List[str]:
    """Return a list of human-readable gate violations (empty = pass)."""
    problems: List[str] = []
    baseline_experiments = baseline.get("experiments", {})
    current_experiments = current.get("experiments", {})

    for name, expected in sorted(baseline_experiments.items()):
        actual = current_experiments.get(name)
        if actual is None:
            problems.append("%s: missing from the current run" % name)
            continue
        if actual.get("status") != "ok":
            problems.append(
                "%s: current run failed (%s)" % (name, actual.get("error", "unknown error"))
            )
            continue
        if expected.get("status") != "ok":
            # A failed baseline entry cannot gate anything; flag it so it
            # gets re-baselined rather than silently skipped forever.
            problems.append("%s: baseline entry is not ok; re-baseline" % name)
            continue

        for key, expected_bpp in sorted(expected.get("bpp", {}).items()):
            actual_bpp = actual.get("bpp", {}).get(key)
            if actual_bpp is None:
                problems.append("%s: bpp[%s] missing from the current run" % (name, key))
            elif actual_bpp != expected_bpp:
                problems.append(
                    "%s: bpp[%s] changed %.6f -> %.6f (any change fails the gate)"
                    % (name, key, expected_bpp, actual_bpp)
                )

        expected_rates = expected.get("mb_per_s", {})
        actual_rates = actual.get("mb_per_s", {})
        expected_anchor = _reference_anchor(expected_rates)
        actual_anchor = _reference_anchor(actual_rates)
        normalised = expected_anchor > 0.0 and actual_anchor > 0.0
        for key, expected_rate in sorted(expected_rates.items()):
            actual_rate = actual_rates.get(key)
            if actual_rate is None:
                problems.append("%s: mb_per_s[%s] missing from the current run" % (name, key))
                continue
            if normalised:
                expected_value = expected_rate / expected_anchor
                actual_value = actual_rate / actual_anchor
                unit = "x reference"
            else:
                expected_value = expected_rate
                actual_value = actual_rate
                unit = "MB/s"
            floor = expected_value * (1.0 - tolerance)
            if actual_value < floor:
                problems.append(
                    "%s: mb_per_s[%s] regressed %.3f -> %.3f %s "
                    "(floor %.3f at %.0f%% tolerance)"
                    % (name, key, expected_value, actual_value, unit, floor, 100.0 * tolerance)
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (benchmarks/baseline.json)")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput regression (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)

    problems = compare(baseline, current, args.tolerance)
    checked = sum(
        len(entry.get("bpp", {})) + len(entry.get("mb_per_s", {}))
        for entry in baseline.get("experiments", {}).values()
    )
    if problems:
        print("performance gate FAILED (%d problems):" % len(problems))
        for problem in problems:
            print("  - %s" % problem)
        return 1
    print(
        "performance gate passed: %d metrics across %d experiments within bounds"
        % (checked, len(baseline.get("experiments", {})))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
