"""Gate a CI job on the SLO verdicts inside a chaos-drill bench JSON.

Reads the ``--json`` output of ``repro-bench chaos`` and exits non-zero
when any recorded SLO failed, with one line per violation.  Splitting the
gate from the drill keeps the histogram artifact uploadable even when the
gate trips: the soak job runs the drill, uploads the JSON, *then* gates.

An optional ``--warm-p99-ms`` bound additionally fails the job when the
baseline (unloaded, warm-cache) phase's client-side p99 exceeds it — the
absolute latency SLO of the nightly soak, on top of the drill's relative
ones.  ``--max-reshard-error-rate`` likewise bounds the fraction of
requests that errored or timed out while the drill's live reshard ran —
the soak's own ceiling, independent of the budget baked into the drill.
Usage::

    python benchmarks/check_slos.py chaos-soak.json [--warm-p99-ms 250] \\
        [--max-reshard-error-rate 0.01]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def check(
    document: dict,
    warm_p99_ms: Optional[float] = None,
    max_reshard_error_rate: Optional[float] = None,
) -> List[str]:
    """Return the list of violations in a ``repro-bench chaos`` summary."""
    entry = document.get("experiments", {}).get("chaos")
    if entry is None:
        return ["no 'chaos' experiment in the summary"]
    if entry.get("status") != "ok":
        return ["chaos drill errored: %s" % entry.get("error", "unknown")]
    extra = entry.get("extra", {})
    violations = [
        "SLO %s: %s" % (name, outcome.get("detail", ""))
        for name, outcome in sorted(extra.get("slos", {}).items())
        if not outcome.get("passed")
    ]
    if warm_p99_ms is not None:
        baseline = next(
            (p for p in extra.get("phases", []) if p.get("name") == "baseline"),
            None,
        )
        if baseline is None:
            violations.append("no baseline phase to hold the warm-p99 SLO against")
        elif baseline["p99_ms"] > warm_p99_ms:
            violations.append(
                "warm p99 %.2f ms exceeds the %.2f ms SLO"
                % (baseline["p99_ms"], warm_p99_ms)
            )
    if max_reshard_error_rate is not None:
        reshard = next(
            (p for p in extra.get("phases", []) if p.get("name") == "reshard"),
            None,
        )
        if reshard is None:
            violations.append("no reshard phase to hold the error-rate SLO against")
        else:
            bad = int(reshard.get("errors", 0)) + int(
                reshard.get("deadline_exceeded", 0)
            )
            rate = bad / max(1, int(reshard.get("requests", 0)))
            if rate > max_reshard_error_rate:
                violations.append(
                    "reshard error rate %.4f (%d bad / %d requests) exceeds "
                    "the %.4f SLO"
                    % (rate, bad, reshard.get("requests", 0), max_reshard_error_rate)
                )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summary", help="JSON written by repro-bench chaos --json")
    parser.add_argument(
        "--warm-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="absolute bound on the baseline phase's client p99 (default: off)",
    )
    parser.add_argument(
        "--max-reshard-error-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="bound on (errors + 504s) / requests during the live-reshard "
        "phase (default: off)",
    )
    args = parser.parse_args(argv)

    with open(args.summary, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    violations = check(
        document,
        warm_p99_ms=args.warm_p99_ms,
        max_reshard_error_rate=args.max_reshard_error_rate,
    )
    if violations:
        for line in violations:
            print("check-slos: FAIL %s" % line, file=sys.stderr)
        return 1
    slos = (
        document["experiments"]["chaos"].get("extra", {}).get("slos", {})
    )
    for name in sorted(slos):
        print("check-slos: ok %s" % name)
    print("check-slos: PASS (%d SLO(s))" % len(slos))
    return 0


if __name__ == "__main__":
    sys.exit(main())
