"""Topology-scaling benchmark — the GIL-escape gate of the proc topology.

Runs the decode-bound closed loop against both topologies (decoded cache
disabled, so every warm region read is an entropy decode) and enforces
the acceptance floor from the issue: the multi-process topology must
deliver at least **1.5x** the thread topology's warm-region throughput
on a machine with 4 or more cores.  Below 4 cores there is nothing to
scale onto and the ratio assertion is skipped — the run still exercises
both topologies end to end and records the artefact.

The formatted report lands in ``benchmarks/results/topology_scaling.txt``;
the same numbers are produced machine-readably by ``repro-bench serve
--topology proc --json`` (the BENCH_10.json trajectory artifact).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.serve_bench import run_topology_bench

#: Acceptance floor from the issue: proc topology >= 1.5x the thread
#: topology's decode-bound throughput on a 4-core runner.
MINIMUM_SCALING = 1.5

#: The ratio gate only applies with enough cores to scale onto.
MINIMUM_CORES = 4


def test_proc_topology_scales_decode_bound_throughput(record_report):
    result = run_topology_bench(
        size=48,
        stripes=4,
        shards=2,
        workers_per_shard=2,
        clients=8,
        requests=160,
    )
    path = record_report("topology_scaling", result.format_report())
    assert path.exists()

    assert result.thread_requests_per_second > 0, "thread loop produced nothing"
    assert result.proc_requests_per_second > 0, "proc loop produced nothing"

    cores = os.cpu_count() or 1
    if cores < MINIMUM_CORES:
        pytest.skip(
            "only %d core(s): the %0.1fx scaling floor needs >= %d"
            % (cores, MINIMUM_SCALING, MINIMUM_CORES)
        )
    assert result.scaling >= MINIMUM_SCALING, (
        "proc topology served %.0f req/s vs %.0f req/s in-process — only "
        "%.2fx on %d cores (floor %.1fx)"
        % (
            result.proc_requests_per_second,
            result.thread_requests_per_second,
            result.scaling,
            cores,
            MINIMUM_SCALING,
        )
    )
