"""Engine speed benchmark — the fast engine's reason to exist.

Regenerates the reference-vs-fast comparison on the synthetic corpus and
enforces the two contract properties of the fast engine:

* **byte identity** — ``run_engine_comparison`` raises if any stream
  diverges, so a pass certifies identity over the whole corpus;
* **>= 3x encode speedup** — asserted on the aggregate (total reference
  time over total fast time), which is robust against per-image timer
  noise on shared runners.

The formatted table lands in ``benchmarks/results/engine_speed.txt`` (the
CI benchmark artefact); the machine-readable equivalent is produced by
``repro-bench engines --json`` and gated against ``benchmarks/baseline.json``
by the perf-gate CI job.
"""

from __future__ import annotations

from repro.experiments.engines import run_engine_comparison
from repro.imaging.synthetic import generate_image

#: Contract from the issue/README: the fast engine must encode at least
#: three times faster than the reference engine on the synthetic corpus.
MINIMUM_AGGREGATE_SPEEDUP = 3.0


def test_engine_speed_and_identity(engine_size, record_report):
    # Warm up NumPy and the table caches so the first timed image does not
    # pay one-off initialisation costs.
    run_engine_comparison(size=16, images=("lena",), verify_roundtrip=False)

    result = run_engine_comparison(size=engine_size)
    path = record_report("engine_speed", result.format_report())
    assert path.exists()

    assert len(result.rows) == 7
    speedup = result.aggregate_speedup()
    assert speedup >= MINIMUM_AGGREGATE_SPEEDUP, (
        "fast engine aggregate speedup %.2fx below the %.1fx floor"
        % (speedup, MINIMUM_AGGREGATE_SPEEDUP)
    )


def test_fast_decode_is_faster_than_reference(engine_size):
    import time

    from repro.core.codec import ProposedCodec

    image = generate_image("lena", size=engine_size)
    stream = ProposedCodec(engine="fast").encode(image)

    start = time.perf_counter()
    decoded_reference = ProposedCodec(engine="reference").decode(stream)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    decoded_fast = ProposedCodec(engine="fast").decode(stream)
    fast_seconds = time.perf_counter() - start

    assert decoded_fast == decoded_reference == image
    # Decode cannot vectorize its modelling front-end, so the bar is lower
    # than the encoder's 3x; inlining alone must still win clearly.
    assert fast_seconds < reference_seconds
