"""Benchmark: regenerate Table 2 (device utilisation) and the memory budgets.

The analytical hardware model replaces the paper's ISE synthesis run (see
DESIGN.md).  The benchmark prints the estimate next to the published table
and asserts the structural properties that must hold for the reproduction to
be meaningful: block ordering, memory budgets and a clock estimate in the
Virtex-4 technology band.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2 import PAPER_MEMORY_BYTES, run_table2


@pytest.fixture(scope="module")
def table2_result():
    return run_table2()


def test_table2_resources(benchmark, record_report):
    """Time the hardware-model evaluation and record the full report."""
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    record_report("table2_resources", result.format_report())
    print()
    print(result.format_report())


class TestTable2Shape:
    def test_block_ordering_matches_paper(self, table2_result):
        summary = table2_result.summary
        coder = summary.block("arithmetic_coder")
        modeling = summary.block("modeling")
        estimator = summary.block("probability_estimator")
        assert coder.slices > modeling.slices > estimator.slices
        assert coder.lut4 > modeling.lut4 > estimator.lut4

    def test_estimates_within_factor_two_of_paper(self, table2_result):
        for name, published in table2_result.paper_table2.items():
            estimated = table2_result.summary.block(name)
            assert published["slices"] / 2 <= estimated.slices <= published["slices"] * 2
            assert published["lut4"] / 2 <= estimated.lut4 <= published["lut4"] * 2

    def test_modeling_memory_budget(self, table2_result):
        assert abs(table2_result.memory.modeling_bytes - PAPER_MEMORY_BYTES["modeling"]) < 200

    def test_estimator_memory_budget(self, table2_result):
        assert (
            abs(table2_result.memory.estimator_bytes - PAPER_MEMORY_BYTES["probability_estimator"])
            < 600
        )

    def test_clock_estimate_in_technology_band(self, table2_result):
        assert 80.0 <= table2_result.timing.clock_mhz <= 250.0

    def test_design_fits_mid_range_virtex4(self, table2_result):
        assert table2_result.summary.slice_utilisation_percent() < 50.0
