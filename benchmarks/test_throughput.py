"""Benchmark: the clock/throughput claim (123 MHz -> 123 Mbit/s) plus the
measured software encode/decode speed of the functional model.

Two very different numbers are produced here:

* the *hardware* throughput predicted by the pipeline model at the paper's
  clock — this is the reproduction of the 123 Mbit/s claim;
* the *software* throughput of this pure-Python functional model, measured
  with pytest-benchmark — reported for completeness (it is orders of
  magnitude slower; the paper's point is precisely that the algorithm needs
  hardware to run at line rate).
"""

from __future__ import annotations

import pytest

from repro.core.codec import ProposedCodec
from repro.core.config import CodecConfig
from repro.experiments.throughput import run_throughput
from repro.imaging.synthetic import generate_image


@pytest.fixture(scope="module")
def throughput_result():
    return run_throughput(size=96, estimated_clock_mhz=140.0)


def test_hardware_throughput_model(benchmark, throughput_result, record_report):
    """Time the throughput-model evaluation and record the report."""
    result = benchmark.pedantic(
        lambda: run_throughput(size=96, estimated_clock_mhz=140.0), rounds=1, iterations=1
    )
    record_report("throughput", result.format_report())
    print()
    print(result.format_report())


class TestThroughputShape:
    def test_paper_rate_reproduced_at_paper_clock(self, throughput_result):
        assert throughput_result.at_paper_clock.megabits_per_second == pytest.approx(123.0, abs=3.0)

    def test_two_line_pipeline_roughly_doubles_throughput(self, throughput_result):
        gain = (
            throughput_result.at_paper_clock.megabits_per_second
            / throughput_result.without_pipelining.megabits_per_second
        )
        assert 1.5 <= gain <= 2.5

    def test_escape_rate_is_small_on_natural_content(self, throughput_result):
        assert throughput_result.escape_rate < 0.05


class TestSoftwareSpeed:
    def test_encode_speed(self, benchmark):
        image = generate_image("lena", size=96)
        codec = ProposedCodec(CodecConfig.hardware())
        stream = benchmark.pedantic(lambda: codec.encode(image), rounds=3, iterations=1)
        assert len(stream) > 0

    def test_decode_speed(self, benchmark):
        image = generate_image("lena", size=96)
        codec = ProposedCodec(CodecConfig.hardware())
        stream = codec.encode(image)
        decoded = benchmark.pedantic(lambda: codec.decode(stream), rounds=3, iterations=1)
        assert decoded == image
