"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts.  The
corpus image size defaults to a value that keeps the whole suite to a couple
of minutes of pure-Python coding; export ``REPRO_BENCH_SIZE=512`` (and a lot
of patience) to reproduce the paper's exact geometry.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


def _size_from_env(variable: str, default: int) -> int:
    value = os.environ.get(variable)
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        return default
    return max(32, parsed)


@pytest.fixture(scope="session")
def table1_size() -> int:
    """Corpus size for the Table 1 comparison (paper: 512)."""
    return _size_from_env("REPRO_BENCH_SIZE", 128)


@pytest.fixture(scope="session")
def figure4_size() -> int:
    """Corpus size for the Figure 4 sweep (paper: 512)."""
    return _size_from_env("REPRO_BENCH_SIZE", 96)


@pytest.fixture(scope="session")
def ablation_size() -> int:
    """Corpus size for the in-text ablations."""
    return _size_from_env("REPRO_BENCH_SIZE", 96)


@pytest.fixture(scope="session")
def engine_size() -> int:
    """Corpus size for the engine-comparison benchmark."""
    return _size_from_env("REPRO_BENCH_SIZE", 96)


@pytest.fixture(scope="session")
def record_report():
    """Persist a benchmark's formatted table under ``benchmarks/results/``.

    pytest captures stdout, so the regenerated tables would otherwise only be
    visible with ``-s``; writing them to files makes every run's artefacts
    inspectable (and is what EXPERIMENTS.md references).
    """
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> Path:
        path = results_dir / ("%s.txt" % name)
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _record
