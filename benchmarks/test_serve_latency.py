"""Serving-tier load benchmark — the acceptance gate of ``repro.serve``.

Boots the real network tier (sockets, HTTP, thread pool, single-flight)
against the synthetic corpus and enforces the two contracts from the
issue:

* a **warm coalesced** region read must have a p50 at least **5x** below
  the cold p50 (in practice the gap is ~10x even with HTTP overhead on
  both sides — a warm read is cache reassembly, a cold one an entropy
  decode);
* a **64-client stampede** on one cold region must reach the backend at
  most **twice** — the single-flight map collapses the herd, so one herd
  can at worst straddle one flight boundary.

The formatted report lands in ``benchmarks/results/serve_latency.txt``;
the same numbers are produced machine-readably by ``repro-bench serve
--json`` (the BENCH_5.json trajectory artifact).
"""

from __future__ import annotations

from repro.experiments.serve_bench import run_encoded_tier_bench, run_serve_bench

#: Acceptance floor from the issue: warm coalesced p50 >= 5x below cold p50.
MINIMUM_WARM_OVER_COLD = 5.0

#: Acceptance ceiling from the issue: a 64-client stampede on one region
#: performs at most 2 backend decodes.
MAXIMUM_STAMPEDE_DECODES = 2


def test_serve_warm_p50_beats_cold_p50(ablation_size, record_report):
    result = run_serve_bench(
        size=min(ablation_size, 64),
        stripes=4,
        shards=2,
        clients=8,
        stampede_clients=64,
    )
    path = record_report("serve_latency", result.format_report())
    assert path.exists()

    assert result.cold_samples_ms, "cold phase produced no samples"
    assert result.warm_samples_ms, "warm phase produced no samples"
    ratio = result.warm_over_cold_p50
    assert ratio >= MINIMUM_WARM_OVER_COLD, (
        "warm p50 %.2f ms is only %.2fx below cold p50 %.2f ms (floor %.1fx)"
        % (result.warm_p50_ms, ratio, result.cold_p50_ms, MINIMUM_WARM_OVER_COLD)
    )

    assert len(result.stampede_samples_ms) == 64
    assert result.stampede_backend_decodes <= MAXIMUM_STAMPEDE_DECODES, (
        "64-client stampede performed %d backend decodes (ceiling %d)"
        % (result.stampede_backend_decodes, MAXIMUM_STAMPEDE_DECODES)
    )
    # The herd was actually coalesced, not accidentally serialised.
    assert result.stampede_coalesced > 0

    # Throughput sanity: the closed loop must be serving, not crawling.
    assert result.warm_requests_per_second > 50

    # Streaming gate: on a warm multi-cell region, the chunked response
    # commits its Netpbm header before any stripe work, so its time to
    # first byte must beat the buffered response's full-assembly total.
    assert result.stream_ttfb_samples_ms, "streaming phase produced no samples"
    assert result.stream_ttfb_p50_ms < result.buffered_full_p50_ms, (
        "streamed TTFB p50 %.2f ms did not beat the buffered full-assembly "
        "p50 %.2f ms" % (result.stream_ttfb_p50_ms, result.buffered_full_p50_ms)
    )


def test_encoded_tier_beats_decoded_only_on_cold_cache(record_report):
    # Cold decoded cache on both sides (cache_bytes=0): every region read
    # pays its entropy decodes.  The encoded tier answers the repeat reads
    # from memory — zero backend operations — while the decoded-only
    # baseline pays the injected backend latency on every request.
    result = run_encoded_tier_bench(
        size=32, stripes=4, repeats=20, injected_latency_ms=5.0
    )
    path = record_report("encoded_tier", result.format_report())
    assert path.exists()

    assert result.encoded_hits > 0, "the encoded tier never served a hit"
    assert result.encoded_backend_ops == 0, (
        "the encoded tier still performed %d backend operations"
        % result.encoded_backend_ops
    )
    assert result.encoded_p50_ms < result.decoded_only_p50_ms, (
        "warm-encoded p50 %.2f ms did not beat the decoded-only p50 %.2f ms"
        % (result.encoded_p50_ms, result.decoded_only_p50_ms)
    )
