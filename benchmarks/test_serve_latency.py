"""Serving-tier load benchmark — the acceptance gate of ``repro.serve``.

Boots the real network tier (sockets, HTTP, thread pool, single-flight)
against the synthetic corpus and enforces the two contracts from the
issue:

* a **warm coalesced** region read must have a p50 at least **5x** below
  the cold p50 (in practice the gap is ~10x even with HTTP overhead on
  both sides — a warm read is cache reassembly, a cold one an entropy
  decode);
* a **64-client stampede** on one cold region must reach the backend at
  most **twice** — the single-flight map collapses the herd, so one herd
  can at worst straddle one flight boundary.

The formatted report lands in ``benchmarks/results/serve_latency.txt``;
the same numbers are produced machine-readably by ``repro-bench serve
--json`` (the BENCH_5.json trajectory artifact).
"""

from __future__ import annotations

from repro.experiments.serve_bench import run_serve_bench

#: Acceptance floor from the issue: warm coalesced p50 >= 5x below cold p50.
MINIMUM_WARM_OVER_COLD = 5.0

#: Acceptance ceiling from the issue: a 64-client stampede on one region
#: performs at most 2 backend decodes.
MAXIMUM_STAMPEDE_DECODES = 2


def test_serve_warm_p50_beats_cold_p50(ablation_size, record_report):
    result = run_serve_bench(
        size=min(ablation_size, 64),
        stripes=4,
        shards=2,
        clients=8,
        stampede_clients=64,
    )
    path = record_report("serve_latency", result.format_report())
    assert path.exists()

    assert result.cold_samples_ms, "cold phase produced no samples"
    assert result.warm_samples_ms, "warm phase produced no samples"
    ratio = result.warm_over_cold_p50
    assert ratio >= MINIMUM_WARM_OVER_COLD, (
        "warm p50 %.2f ms is only %.2fx below cold p50 %.2f ms (floor %.1fx)"
        % (result.warm_p50_ms, ratio, result.cold_p50_ms, MINIMUM_WARM_OVER_COLD)
    )

    assert len(result.stampede_samples_ms) == 64
    assert result.stampede_backend_decodes <= MAXIMUM_STAMPEDE_DECODES, (
        "64-client stampede performed %d backend decodes (ceiling %d)"
        % (result.stampede_backend_decodes, MAXIMUM_STAMPEDE_DECODES)
    )
    # The herd was actually coalesced, not accidentally serialised.
    assert result.stampede_coalesced > 0

    # Throughput sanity: the closed loop must be serving, not crawling.
    assert result.warm_requests_per_second > 50
