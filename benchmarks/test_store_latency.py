"""Store serving benchmark — the acceptance gate of the serving layer.

Regenerates the cold-vs-warm random-access comparison over the synthetic
planar corpus and enforces the serving layer's contract: a warm-cache
region read must be at least **5x** faster than a cold full-blob decode on
every corpus image (in practice the measured gap is orders of magnitude —
a warm read is pure array reassembly, a full decode re-runs the entropy
coder over every cell).

The formatted table lands in ``benchmarks/results/store_latency.txt`` (the
CI benchmark artefact); the same numbers are produced machine-readably by
``repro-bench store --json``.
"""

from __future__ import annotations

from repro.experiments.store_bench import run_store_bench

#: Acceptance floor from the issue: warm-cache region reads >= 5x faster
#: than cold full-blob decode on the synthetic planar corpus.
MINIMUM_WARM_SPEEDUP = 5.0


def test_store_warm_reads_beat_cold_full_decode(ablation_size, record_report):
    result = run_store_bench(size=min(ablation_size, 64), stripes=4)
    path = record_report("store_latency", result.format_report())
    assert path.exists()

    assert len(result.rows) == 7
    speedup = result.min_warm_speedup()
    assert speedup >= MINIMUM_WARM_SPEEDUP, (
        "warm region read speedup %.2fx below the %.1fx floor"
        % (speedup, MINIMUM_WARM_SPEEDUP)
    )


def test_store_batched_requests_match_sequential(ablation_size):
    """Both serving shapes return identical images (and a sane throughput)."""
    from repro.imaging.synthetic import generate_planar_image
    from repro.store import ImageStore
    from repro.store.backends import FilesystemBackend
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        store = ImageStore(FilesystemBackend(root))
        image = generate_planar_image("lena", size=32)
        key = store.put(image, stripes=4)
        ranges = [(0, 2), (1, 3), (2, 4), (0, 1), (0, 2)]
        assert store.get_regions(key, ranges) == [
            store.get_region(key, r) for r in ranges
        ]
