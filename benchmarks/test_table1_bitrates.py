"""Benchmark: regenerate Table 1 (bit-rate comparison of the four codecs).

The paper's Table 1 reports bits per pixel of JPEG-LS, SLP(M0), CALIC and
the proposed codec on seven 512x512 grey-scale images.  This benchmark runs
the same comparison on the synthetic corpus (smaller by default — see
``conftest.py``) and checks the *shape* of the result:

* every codec is lossless on every corpus image (verified inside the harness);
* textured images cost more bits than smooth ones for every codec;
* the proposed codec outperforms the two Golomb-Rice schemes on average;
* the proposed codec lands within a small margin of CALIC (the paper reports
  it slightly behind).
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def table1_result(table1_size):
    return run_table1(size=table1_size)


def test_table1_bitrates(benchmark, table1_size, record_report):
    """Time one full Table 1 regeneration and record the resulting table."""
    result = benchmark.pedantic(
        lambda: run_table1(size=table1_size), rounds=1, iterations=1
    )
    report = "Table 1 (synthetic corpus, %dx%d):\n%s" % (
        table1_size,
        table1_size,
        result.format_table(include_paper=True),
    )
    record_report("table1_bitrates", report)
    print()
    print(report)


class TestTable1Shape:
    def test_all_seven_images_present(self, table1_result):
        assert [row.image for row in table1_result.rows] == [
            "barb",
            "boat",
            "goldhill",
            "lena",
            "mandrill",
            "peppers",
            "zelda",
        ]

    def test_mandrill_is_hardest_for_every_codec(self, table1_result):
        for name in table1_result.codec_names:
            rates = {row.image: row.bits_per_pixel[name] for row in table1_result.rows}
            assert max(rates, key=rates.get) == "mandrill"

    def test_zelda_is_among_the_easiest(self, table1_result):
        for name in table1_result.codec_names:
            rates = {row.image: row.bits_per_pixel[name] for row in table1_result.rows}
            ranked = sorted(rates, key=rates.get)
            assert "zelda" in ranked[:2]

    def test_proposed_beats_golomb_schemes_on_average(self, table1_result):
        averages = table1_result.averages()
        assert averages["proposed"] < averages["jpeg-ls"]
        assert averages["proposed"] < averages["slp"]

    def test_proposed_is_close_to_calic(self, table1_result):
        averages = table1_result.averages()
        # The paper reports CALIC 4.50 vs proposed 4.55 (a 0.05 bpp gap); our
        # CALIC reimplementation is slightly weaker, so allow the gap to go
        # either way but stay small.
        assert abs(averages["proposed"] - averages["calic"]) < 0.15

    def test_average_rates_in_the_papers_band(self, table1_result):
        # The paper's averages span 4.50-4.66 bpp on the original 512x512
        # images; the synthetic corpus is tuned to land in the same region
        # (within ~1 bpp), which keeps relative comparisons meaningful.
        for name, value in table1_result.averages().items():
            paper_value = PAPER_TABLE1["average"][name]
            assert abs(value - paper_value) < 1.0, (name, value, paper_value)
