"""Extension benchmark: the multi-core scale-up remark of Section V.

The paper's last performance statement is that "the low complexity means
that a multi-core solution could be used to scale up the performance".  The
benchmark quantifies that option: predicted aggregate throughput and device
area for 1-8 stripe-parallel cores, plus the measured compression penalty of
coding stripes with independent adaptive state.
"""

from __future__ import annotations

import pytest

from repro.hardware.blocks import default_blocks
from repro.hardware.multicore import MulticoreModel, measure_stripe_penalty
from repro.hardware.resources import summarize_blocks
from repro.imaging.synthetic import generate_image

CORE_COUNTS = [1, 2, 4, 8]


@pytest.fixture(scope="module")
def scaling_points():
    model = MulticoreModel(summarize_blocks(default_blocks()), clock_mhz=123.0)
    return model.scaling(512, 512, CORE_COUNTS)


def test_multicore_scaling(benchmark, scaling_points, record_report):
    model = MulticoreModel(summarize_blocks(default_blocks()), clock_mhz=123.0)
    points = benchmark.pedantic(
        lambda: model.scaling(512, 512, CORE_COUNTS), rounds=1, iterations=1
    )
    penalty = measure_stripe_penalty(generate_image("lena", size=96), cores=4)
    report = (
        "Multi-core scaling (512x512 image, 123 MHz per core):\n"
        + model.format_table(points)
        + "\nstripe-parallel penalty on lena (4 cores): %.4f bpp" % penalty["penalty_bpp"]
    )
    record_report("multicore_scaling", report)
    print()
    print(report)


class TestMulticoreShape:
    def test_eight_cores_clear_gigabit(self, scaling_points):
        by_cores = {p.cores: p for p in scaling_points}
        assert by_cores[8].aggregate_megabits_per_second > 900.0

    def test_speedup_is_monotone(self, scaling_points):
        speedups = [p.speedup for p in scaling_points]
        assert speedups == sorted(speedups)

    def test_area_cost_is_linear(self, scaling_points):
        by_cores = {p.cores: p for p in scaling_points}
        assert by_cores[8].total_slices == 8 * by_cores[1].total_slices
