"""Extension benchmark: measured stripe-parallel scaling of the software codec.

`test_multicore_scaling` models the paper's multi-core option analytically;
this benchmark exercises the real stripe-parallel subsystem
(:mod:`repro.parallel`): the bit-rate overhead of striped version-2 streams
versus core count, validated against the hardware model's prediction, and
the measured wall-clock speedup of a process-pool encode of a megapixel
image on multi-core runners.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.hardware.multicore import format_validation_table, validate_scaling
from repro.imaging.synthetic import generate_image
from repro.parallel import ParallelCodec

CORE_COUNTS = [1, 2, 4, 8]


def _effective_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def parallel_size() -> int:
    """Corpus size for the stripe-penalty trajectory."""
    value = os.environ.get("REPRO_BENCH_SIZE")
    try:
        return max(32, int(value)) if value else 256
    except ValueError:
        return 256


def test_parallel_scaling(benchmark, parallel_size, record_report):
    """Bit-rate overhead of striped streams: predicted vs measured, 1-8 cores."""
    image = generate_image("lena", size=parallel_size)
    rows = benchmark.pedantic(
        lambda: validate_scaling(image, CORE_COUNTS), rounds=1, iterations=1
    )
    report = (
        "Stripe-parallel penalty, predicted vs measured (%dx%d lena):\n"
        % (parallel_size, parallel_size)
        + format_validation_table(rows)
    )
    record_report("parallel_scaling", report)
    print()
    print(report)

    penalties = [row["measured_penalty_bpp"] for row in rows]
    assert penalties[0] >= 0.0
    # More cold stripes cost more bits...
    assert penalties == sorted(penalties)
    # ...but the warm-up penalty stays small on the trajectory image.
    assert penalties[-1] < 0.5
    # The analytic model tracks the measurement to within a factor of ~2.
    for row in rows[1:]:
        assert row["measured_penalty_bpp"] < 2.5 * row["predicted_penalty_bpp"] + 0.01


@pytest.mark.skipif(
    _effective_cpus() < 2, reason="speedup is only observable with 2+ CPUs"
)
def test_parallel_speedup_megapixel(record_report):
    """A 2-core striped encode of a >=1 Mpixel image beats the 1-core encode."""
    image = generate_image("lena", size=1024)
    assert image.pixel_count >= 1_000_000

    start = time.perf_counter()
    single = ParallelCodec(cores=1).encode(image)
    single_seconds = time.perf_counter() - start

    dual_codec = ParallelCodec(cores=2)
    start = time.perf_counter()
    dual = dual_codec.encode(image)
    dual_seconds = time.perf_counter() - start

    assert dual_codec.decode(dual) == image
    report = (
        "Stripe-parallel wall-clock on a %dx%d image (%d CPUs available):\n"
        "1 core : %6.2f s (%d bytes)\n"
        "2 cores: %6.2f s (%d bytes, speedup %.2fx)"
        % (
            image.width,
            image.height,
            _effective_cpus(),
            single_seconds,
            len(single),
            dual_seconds,
            len(dual),
            single_seconds / dual_seconds,
        )
    )
    record_report("parallel_speedup", report)
    print()
    print(report)
    assert dual_seconds < single_seconds * 0.9
