"""CI smoke test of the ``repro-serve`` console script.

Boots the real console script as a subprocess (the exact artifact users
run), requires the listening line within a startup budget, then drives
every endpoint through :class:`repro.serve.client.ServeClient`:

* ``PUT /images`` of a generated PPM and a generated PGM;
* full ``GET``, ``GET .../plane/k``, ``GET .../region/a-b`` (values
  verified against an in-process decode of the same corpus image);
* batched ``POST .../regions``;
* a thread herd on one cold region with a coalescing assertion
  (``/stats`` must report coalesced requests and at most 2 backend
  decodes for the herd);
* ``/healthz`` and ``/stats`` (including the cache byte-occupancy fields).

Any non-2xx answer raises, any assertion failure exits non-zero, and the
server process is always torn down.  Usage::

    python benchmarks/serve_smoke.py [--shards 2] [--backend fs]
        [--startup-timeout 5.0] [--topology thread|proc]
        [--workers-per-shard 2] [--replication 1]

``--topology proc`` boots the multi-process tier (shard workers behind
the routing proxy) through the same console script; with
``--replication 2`` the smoke additionally SIGKILLs one worker process
mid-sweep and requires **zero failed reads** (the sibling worker and the
replica shard must absorb everything) plus a supervisor restart.

The ``--startup-timeout`` default of 5 seconds is the CI gate: a server
that cannot boot and bind in 5 s fails the job.
"""

from __future__ import annotations

import argparse
import io
import os
import queue
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import List, Optional

_LISTEN_PATTERN = re.compile(r"listening on http://([0-9.]+):(\d+)")


def _await_listen_line(process: subprocess.Popen, timeout: float) -> "tuple[str, int]":
    """Read stdout until the listening line appears, within ``timeout``."""
    lines: "queue.Queue[Optional[str]]" = queue.Queue()

    def pump() -> None:
        assert process.stdout is not None
        for line in process.stdout:
            lines.put(line)
        lines.put(None)

    threading.Thread(target=pump, daemon=True).start()
    try:
        line = lines.get(timeout=timeout)
    except queue.Empty:
        raise SystemExit("FAIL: no listening line within %.1fs of startup" % timeout)
    if line is None:
        raise SystemExit("FAIL: server exited before listening")
    match = _LISTEN_PATTERN.search(line)
    if not match:
        raise SystemExit("FAIL: unexpected startup line %r" % line)
    return match.group(1), int(match.group(2))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--backend", choices=("fs", "sqlite"), default="fs")
    parser.add_argument("--startup-timeout", type=float, default=5.0)
    parser.add_argument("--herd", type=int, default=16)
    parser.add_argument("--topology", choices=("thread", "proc"), default="thread")
    parser.add_argument("--workers-per-shard", type=int, default=2)
    parser.add_argument("--replication", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.imaging.pnm import write_pgm, write_ppm
    from repro.imaging.synthetic import generate_image, generate_planar_image
    from repro.serve.client import ServeClient

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as root:
        argv_server = [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--port",
            "0",
            "--shards",
            str(args.shards),
            "--backend",
            args.backend,
            "--root",
            root,
            "--replication",
            str(args.replication),
        ]
        if args.topology == "proc":
            argv_server += [
                "--topology",
                "proc",
                "--workers-per-shard",
                str(args.workers_per_shard),
            ]
        process = subprocess.Popen(
            argv_server,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            host, port = _await_listen_line(process, args.startup_timeout)
            print("serve-smoke: server up at %s:%d" % (host, port))
            client = ServeClient(host, port)

            assert client.healthz() == {"status": "ok", "shards": args.shards}

            colour = generate_planar_image("lena", size=32, seed=2007, planes=3)
            buffer = io.BytesIO()
            write_ppm(colour, buffer)
            outcome = client.put_image(buffer.getvalue(), stripes=4)
            key = str(outcome["key"])
            print("serve-smoke: put %s -> %s" % (key[:12], outcome["shard"]))

            assert client.get_image(key) == colour, "full GET mismatch"
            assert client.get_plane(key, 1) == colour.plane(1), "plane GET mismatch"
            region = client.get_region(key, 1, 3)
            assert region.height == colour.height // 2, "region GET wrong rows"
            batch = client.get_regions(key, [(0, 1), (1, 3)])
            assert len(batch) == 2 and batch[1] == region, "batched regions mismatch"
            print("serve-smoke: put/get/plane/region/regions verified")

            if args.topology == "proc" and args.replication >= 2:
                # SIGKILL one shard worker mid-sweep: at R=2 with a sibling
                # worker per shard, not a single read may fail, and the
                # supervisor must respawn the victim.
                victim = client.stats()["workers"]["shard-00"][0]
                os.kill(int(victim["pid"]), signal.SIGKILL)
                print(
                    "serve-smoke: SIGKILLed worker pid %s of shard-00"
                    % victim["pid"]
                )
                failed_reads = 0
                for sweep in range(30):
                    try:
                        assert client.get_image(key) == colour
                        client.get_region(key, 1, 3)
                    except BaseException:
                        failed_reads += 1
                assert failed_reads == 0, (
                    "%d read(s) failed during the worker outage" % failed_reads
                )
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    row = client.stats()["workers"]["shard-00"][0]
                    if int(row["restarts"]) >= 1 and row["up"]:
                        break
                    time.sleep(0.2)
                else:
                    raise SystemExit("FAIL: killed worker was not restarted in 30s")
                print(
                    "serve-smoke: zero failed reads during outage; worker "
                    "respawned as pid %s" % row["pid"]
                )

            # Coalescing: a herd on one cold region.  Two stripes make the
            # cell large enough that the leader's decode overlaps the herd.
            gray = generate_image("mandrill", size=64, seed=2008)
            buffer = io.BytesIO()
            write_pgm(gray, buffer)
            gray_key = str(client.put_image(buffer.getvalue(), stripes=2)["key"])

            def shard_misses() -> int:
                return sum(s["cache"]["misses"] for s in client.stats()["shards"])

            misses_before = shard_misses()
            coalesced_before = int(client.stats()["flight"]["coalesced"])
            barrier = threading.Barrier(args.herd)
            failures: List[BaseException] = []

            def worker() -> None:
                herd_client = ServeClient(host, port)
                try:
                    barrier.wait()
                    herd_client.get_region(gray_key, 0, 1)
                except BaseException as error:
                    failures.append(error)
                finally:
                    herd_client.close()

            threads = [threading.Thread(target=worker) for _ in range(args.herd)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            if failures:
                raise failures[0]
            decodes = shard_misses() - misses_before
            coalesced = int(client.stats()["flight"]["coalesced"]) - coalesced_before
            print(
                "serve-smoke: %d-client herd -> %d backend decode(s), %d coalesced"
                % (args.herd, decodes, coalesced)
            )
            assert decodes <= 2, "stampede reached the backend %d times" % decodes

            stats = client.stats()
            assert stats["server"]["requests_total"] > 0
            for shard in stats["shards"]:
                assert "current_bytes" in shard["cache"], "cache bytes missing"
            client.close()
            print("serve-smoke: PASS")
            return 0
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


if __name__ == "__main__":
    sys.exit(main())
