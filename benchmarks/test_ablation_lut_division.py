"""Ablation benchmark: the 1 KByte LUT division (Section III).

The paper bounds the dividend to 10 bits and performs the error-feedback
division with a 1 KByte lookup table, claiming the approximation "does not
affect the compression performance".  The benchmark measures the codec with
the LUT divider and with exact division and checks that the average bit-rate
difference over the corpus is negligible.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_division_ablation


@pytest.fixture(scope="module")
def ablation(ablation_size):
    return run_division_ablation(size=ablation_size)


def test_lut_division_ablation(benchmark, ablation_size, record_report):
    result = benchmark.pedantic(
        lambda: run_division_ablation(size=ablation_size), rounds=1, iterations=1
    )
    record_report("ablation_lut_division", result.format_report())
    print()
    print(result.format_report())


class TestLutDivisionShape:
    def test_approximation_is_harmless(self, ablation):
        """The paper's claim: LUT division does not change the bit rate."""
        assert abs(ablation.delta_bpp) < 0.01

    def test_per_image_differences_are_tiny(self, ablation):
        for image in ablation.per_image_baseline:
            difference = abs(
                ablation.per_image_baseline[image] - ablation.per_image_variant[image]
            )
            assert difference < 0.03, image

    def test_every_corpus_image_measured(self, ablation):
        assert len(ablation.per_image_baseline) == 7
