"""Docs drift gate: intra-repo links + CLI-flag agreement.

Run by the CI ``docs`` job (and runnable locally)::

    PYTHONPATH=src python benchmarks/check_docs.py

Two checks, both of which fail the build on drift:

1. **Links.**  Every relative markdown link in ``README.md`` and
   ``docs/*.md`` must resolve to a file or directory inside the
   repository.  External links (``http``/``https``/``mailto``), pure
   anchors and GitHub-web relative URLs that escape the checkout (the CI
   badge) are skipped.

2. **CLI flags.**  Every ``--flag`` named in a per-script section of
   ``docs/cli.md`` must exist in that console script's live argparse
   parser, and every parser flag must be documented in that section —
   adding a flag without documenting it (or documenting one that was
   removed) fails.  ``--help``/``--version`` are exempt: they are
   generated and documented once globally.

3. **HTTP routes.**  ``docs/api.md`` must agree route-for-route with the
   live route table (:data:`repro.serve.routes.ROUTES`): every template
   the server dispatches must appear as a `` `METHOD /path` `` span, and
   every such span in the doc must exist in the table — adding a route
   without documenting it (or documenting a removed one) fails.  Every
   stable error code of the envelope must be documented too.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import re
import sys
from pathlib import Path
from typing import Callable, Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# [text](target) — target captured up to the closing parenthesis; images
# ( ![alt](target) ) match the same shape and are checked identically.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
_EXEMPT_FLAGS = {"--help", "--version"}


def _markdown_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links() -> List[str]:
    """Every relative link in README/docs must resolve inside the repo."""
    problems: List[str] = []
    for path in _markdown_files():
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            try:
                resolved.relative_to(REPO_ROOT)
            except ValueError:
                # A GitHub-web relative URL (e.g. the CI badge's
                # ../../actions/...) — not a checkout path, skip.
                continue
            if not resolved.exists():
                problems.append(
                    "%s: broken link %r (resolved to %s)"
                    % (path.relative_to(REPO_ROOT), target, resolved)
                )
    return problems


def _captured_help(main: Callable[[List[str]], int], argv: List[str]) -> str:
    """The ``--help`` text of a console-script main, captured in-process."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        try:
            main(argv)
        except SystemExit:
            pass
    return buffer.getvalue()


def _subparser_helps(parser: argparse.ArgumentParser) -> List[str]:
    """Help text of the parser plus every registered subcommand parser."""
    texts = [parser.format_help()]
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        if isinstance(action, argparse._SubParsersAction):
            for subparser in action.choices.values():
                texts.append(subparser.format_help())
    return texts


def _parser_flags(help_texts: List[str]) -> Set[str]:
    flags: Set[str] = set()
    for text in help_texts:
        flags.update(_FLAG_RE.findall(text))
    return flags - _EXEMPT_FLAGS


def _script_help_texts() -> Dict[str, List[str]]:
    """Live ``--help`` output per console script, subcommands included."""
    from repro.cli import bench_main, compress_main, decompress_main, inspect_main
    from repro.serve.cli import build_parser as serve_parser
    from repro.store.cli import build_parser as store_parser

    return {
        "repro-compress": [_captured_help(compress_main, ["--help"])],
        "repro-decompress": [_captured_help(decompress_main, ["--help"])],
        "repro-inspect": [_captured_help(inspect_main, ["--help"])],
        "repro-bench": [_captured_help(bench_main, ["--help"])],
        "repro-store": _subparser_helps(store_parser()),
        "repro-serve": _subparser_helps(serve_parser()),
    }


def _doc_sections(text: str) -> List[Tuple[str, str]]:
    """Split ``docs/cli.md`` into (heading, body) pairs at ``##`` headings."""
    sections: List[Tuple[str, str]] = []
    heading = ""
    body: List[str] = []
    for line in text.splitlines():
        if line.startswith("## "):
            if heading:
                sections.append((heading, "\n".join(body)))
            heading = line[3:].strip()
            body = []
        else:
            body.append(line)
    if heading:
        sections.append((heading, "\n".join(body)))
    return sections


def check_cli_flags() -> List[str]:
    """docs/cli.md and the live parsers must agree flag-for-flag."""
    doc_path = REPO_ROOT / "docs" / "cli.md"
    if not doc_path.exists():
        return ["docs/cli.md is missing"]
    problems: List[str] = []
    sections = dict(_doc_sections(doc_path.read_text(encoding="utf-8")))
    help_texts = _script_help_texts()
    for script, texts in sorted(help_texts.items()):
        if script not in sections:
            problems.append("docs/cli.md: no '## %s' section" % script)
            continue
        documented = set(_FLAG_RE.findall(sections[script])) - _EXEMPT_FLAGS
        live = _parser_flags(texts)
        for flag in sorted(documented - live):
            problems.append(
                "docs/cli.md: %s documents %s, which the parser does not define"
                % (script, flag)
            )
        for flag in sorted(live - documented):
            problems.append(
                "docs/cli.md: %s is missing %s, which the parser defines"
                % (script, flag)
            )
    return problems


#: A backticked `METHOD /path` span in docs/api.md — the documented form
#: of one route-table entry.
_ROUTE_SPAN_RE = re.compile(r"`((?:GET|PUT|POST|DELETE|PATCH|HEAD) /[^`]*)`")


def check_api_routes() -> List[str]:
    """docs/api.md and the live route table must agree route-for-route."""
    from repro.serve.routes import ERROR_CODES, route_templates

    doc_path = REPO_ROOT / "docs" / "api.md"
    if not doc_path.exists():
        return ["docs/api.md is missing"]
    text = doc_path.read_text(encoding="utf-8")
    problems: List[str] = []
    documented = set(_ROUTE_SPAN_RE.findall(text))
    live = set(route_templates())
    for template in sorted(live - documented):
        problems.append(
            "docs/api.md: missing `%s`, which the route table defines" % template
        )
    for template in sorted(documented - live):
        problems.append(
            "docs/api.md: documents `%s`, which the route table does not define"
            % template
        )
    for code in sorted(ERROR_CODES):
        if "`%s`" % code not in text:
            problems.append(
                "docs/api.md: error code `%s` of the envelope is not documented"
                % code
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="check_docs",
        description="Validate docs links, docs/cli.md flag agreement and "
        "docs/api.md route-table agreement.",
    )
    parser.parse_args()
    problems = check_links() + check_cli_flags() + check_api_routes()
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(_markdown_files())
    if problems:
        print(
            "check_docs: %d problem(s) across %d markdown file(s)"
            % (len(problems), checked),
            file=sys.stderr,
        )
        return 1
    print("check_docs: %d markdown file(s), links + CLI flags agree" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main())
