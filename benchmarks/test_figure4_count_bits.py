"""Benchmark: regenerate Figure 4 (bit rate vs. frequency-count width).

The paper sweeps the probability-estimator count width over 10/12/14/16 bits
and selects 14.  The benchmark re-runs the sweep, prints the measured curve
next to the paper's, and checks the mechanism the paper describes: narrow
counters rescale (and escape) more often, and the narrowest setting must not
be the best one.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import PAPER_FIGURE4, run_figure4

COUNT_BITS = (10, 12, 14, 16)


@pytest.fixture(scope="module")
def figure4_result(figure4_size):
    return run_figure4(count_bits_values=COUNT_BITS, size=figure4_size)


def test_figure4_sweep(benchmark, figure4_size, record_report):
    """Time one full Figure 4 sweep and record the measured curve."""
    result = benchmark.pedantic(
        lambda: run_figure4(count_bits_values=COUNT_BITS, size=figure4_size),
        rounds=1,
        iterations=1,
    )
    report = "Figure 4 (synthetic corpus, %dx%d):\n%s" % (
        figure4_size,
        figure4_size,
        result.format_table(),
    )
    record_report("figure4_count_bits", report)
    print()
    print(report)


class TestFigure4Shape:
    def test_all_widths_swept(self, figure4_result):
        assert [p.count_bits for p in figure4_result.points] == list(COUNT_BITS)

    def test_narrow_counters_rescale_most(self, figure4_result):
        rescales = {p.count_bits: p.total_rescales for p in figure4_result.points}
        assert rescales[10] >= rescales[14]
        assert rescales[10] >= rescales[16]

    def test_narrowest_width_is_not_the_best(self, figure4_result):
        """The left side of the paper's U-shape: 10-bit counters lose."""
        rates = {p.count_bits: p.average_bits_per_pixel for p in figure4_result.points}
        assert rates[10] >= min(rates.values())

    def test_selected_width_is_14_or_wider(self, figure4_result):
        # On the smaller synthetic corpus the 14- and 16-bit settings can tie
        # (few counters saturate); the paper's choice of 14 must be at least
        # as good as every narrower setting.
        rates = {p.count_bits: p.average_bits_per_pixel for p in figure4_result.points}
        assert rates[14] <= rates[10] + 1e-9
        assert rates[14] <= rates[12] + 1e-9

    def test_spread_is_moderate(self, figure4_result):
        """The paper's curve spans ~0.2 bpp; ours must not be wildly different."""
        rates = [p.average_bits_per_pixel for p in figure4_result.points]
        assert max(rates) - min(rates) < 0.6

    def test_paper_reference_minimum(self):
        assert min(PAPER_FIGURE4, key=PAPER_FIGURE4.get) == 14
