"""CI chaos smoke: fault injection against a live server, under a time budget.

Boots the serving tier in-process (fault injectors need a handle on the
shard backends, which a subprocess cannot give us), wraps every shard in
a :class:`repro.serve.chaos.FaultInjector`, and walks the two headline
failure modes the production-hardening layer exists for:

* **backend stall** — the shard owning a hot key stops answering; a
  deadline-carrying request must come back as a fast ``504``, a key on
  the healthy shard must keep serving (partial availability), and once
  the stall clears the stalled region must decode cleanly — the
  abandoned leader cannot poison the cell cache or single-flight map;
* **shard kill** — the shard's backend raises on every call; reads on it
  surface errors while ``/healthz`` stays ``200``, and a revive restores
  service with no restart;
* **replica failover** — a second service with replication factor 2:
  killing a key's primary owner must not fail a single read (the
  surviving replica answers, surfaced in the ``/stats`` failover
  counters), and the failover must not poison the cell cache or
  single-flight map;
* **worker-process kill** — the multi-process topology (shard worker
  processes behind the routing proxy, replication 2): SIGKILLing one
  worker must not fail a single read, and the supervisor must respawn
  the victim with a fresh pid.

The whole drill runs under a hard wall-clock budget (default 60 s): a
hung drain, stuck worker or unbounded retry fails the job by timeout,
which is exactly the regression this smoke exists to catch.  Usage::

    python benchmarks/chaos_smoke.py [--budget 60] [--deadline-ms 300]
"""

from __future__ import annotations

import argparse
import io
import sys
import time
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=float, default=60.0,
                        help="hard wall-clock budget in seconds (default 60)")
    parser.add_argument("--deadline-ms", type=int, default=300,
                        help="per-request deadline during the stall (default 300)")
    parser.add_argument("--size", type=int, default=32)
    args = parser.parse_args(argv)

    from repro.exceptions import ServeError
    from repro.imaging.pnm import write_ppm
    from repro.imaging.synthetic import generate_planar_image
    from repro.serve.app import ImageService, start_server_thread
    from repro.serve.chaos import FaultInjector
    from repro.serve.client import ServeClient
    from repro.store.store import ImageStore

    import tempfile

    began = time.monotonic()

    def check_budget(stage: str) -> None:
        elapsed = time.monotonic() - began
        if elapsed > args.budget:
            raise SystemExit(
                "FAIL: chaos smoke blew its %.0fs budget at stage %r (%.1fs)"
                % (args.budget, stage, elapsed)
            )

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as root:
        from pathlib import Path

        stores = [ImageStore.open(Path(root) / ("shard-%02d" % i)) for i in range(2)]
        service = ImageService(stores)
        injectors = dict(
            zip(service.router.names, (s.wrap_backend(FaultInjector) for s in stores))
        )
        handle = start_server_thread(service)
        try:
            client = ServeClient(*handle.address)

            # Ingest until both shards own at least one key.
            owners = {}
            seed = 4100
            while len(set(owners.values())) < 2:
                image = generate_planar_image("lena", size=args.size,
                                              seed=seed, planes=3)
                buffer = io.BytesIO()
                write_ppm(image, buffer)
                outcome = client.put_image(buffer.getvalue(), stripes=4)
                owners[str(outcome["key"])] = str(outcome["shard"])
                seed += 1
            by_shard = {shard: key for key, shard in owners.items()}
            stalled_shard, healthy_shard = sorted(by_shard)
            stalled_key = by_shard[stalled_shard]
            healthy_key = by_shard[healthy_shard]
            client.get_region(healthy_key, 0, 1)  # warm the healthy shard
            print("chaos-smoke: %d key(s) over 2 shards, stalling %s"
                  % (len(owners), stalled_shard))
            check_budget("ingest")

            # --- Backend stall -------------------------------------------
            for store in stores:
                store.cache.clear()
            injectors[stalled_shard].stall()
            try:
                slow = ServeClient(*handle.address, deadline_ms=args.deadline_ms)
                stall_began = time.monotonic()
                try:
                    slow.get_region(stalled_key, 0, 1)
                    raise SystemExit("FAIL: stalled shard served a region")
                except ServeError as error:
                    assert error.status == 504, (
                        "expected 504 from the stalled shard, got %d" % error.status
                    )
                stall_elapsed = time.monotonic() - stall_began
                assert stall_elapsed < 10.0, (
                    "504 took %.1fs -- deadline did not bound the stall"
                    % stall_elapsed
                )
                slow.close()
                # Partial availability: the healthy shard still serves.
                assert client.get_region(healthy_key, 0, 1).height > 0
                print("chaos-smoke: stall -> 504 in %.0f ms, healthy shard kept "
                      "serving" % (stall_elapsed * 1000.0))
            finally:
                injectors[stalled_shard].clear_stall()

            # Recovery, asserted from /stats counters not logs.
            stats = client.stats()
            assert stats["server"]["counters"].get("deadline_exceeded", 0) >= 1
            deadline = time.monotonic() + 10.0
            while service.flight.in_flight and time.monotonic() < deadline:
                time.sleep(0.02)
            assert service.flight.in_flight == 0, "single-flight map not drained"
            assert client.get_region(stalled_key, 0, 1).height > 0, (
                "stalled region did not recover after clear_stall"
            )
            print("chaos-smoke: stall cleared, stalled region decodes again")
            check_budget("stall")

            # --- Shard kill ----------------------------------------------
            for store in stores:
                store.cache.clear()
                store._headers.clear()
            injectors[stalled_shard].kill()
            try:
                try:
                    client.get_region(stalled_key, 0, 1)
                    raise SystemExit("FAIL: killed shard served a region")
                except ServeError as error:
                    assert error.status >= 400, "kill must surface an error"
                assert client.healthz()["status"] == "ok", (
                    "healthz must stay 200 through a shard kill"
                )
            finally:
                injectors[stalled_shard].revive()
            assert client.get_region(stalled_key, 0, 1).height > 0, (
                "revived shard did not serve"
            )
            print("chaos-smoke: kill surfaced errors, healthz stayed up, "
                  "revive restored reads")
            check_budget("kill")

            chaos = injectors[stalled_shard].stats()["chaos"]
            assert chaos["kills"] >= 1 and chaos["stalls"] >= 1
            client.close()
        finally:
            handle.stop()

    # --- Replica failover (replication factor 2) ---------------------
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-r2-") as root:
        from pathlib import Path

        stores = [
            ImageStore.open(Path(root) / ("shard-%02d" % i)) for i in range(2)
        ]
        service = ImageService(stores, replication=2)
        injectors = dict(
            zip(service.router.names, (s.wrap_backend(FaultInjector) for s in stores))
        )
        handle = start_server_thread(service)
        try:
            client = ServeClient(*handle.address)
            image = generate_planar_image("lena", size=args.size, seed=4200, planes=3)
            buffer = io.BytesIO()
            write_ppm(image, buffer)
            outcome = client.put_image(buffer.getvalue(), stripes=4)
            key = str(outcome["key"])
            primary = str(outcome["shard"])
            assert sorted(outcome["replicas"]) == sorted(service.router.names), (
                "R=2 write must land on both shards, got %r" % (outcome["replicas"],)
            )
            client.get_region(key, 0, 1)  # warm
            for store in stores:
                store.cache.clear()
                store._headers.clear()
            injectors[primary].kill()
            try:
                for stripe in range(4):
                    assert client.get_region(key, stripe, stripe + 1).height > 0, (
                        "read failed with one replica down (stripe %d)" % stripe
                    )
                assert client.healthz()["status"] == "ok"
            finally:
                injectors[primary].revive()
            stats = client.stats()
            failovers = stats["server"]["counters"].get("failovers", 0)
            assert failovers >= 1, (
                "expected failover reads in /stats, counter is %d" % failovers
            )
            shard_failovers = (
                stats["server"]["shard_counters"].get(primary, {}).get("failovers", 0)
            )
            assert shard_failovers >= 1, (
                "per-shard failover counter for %s is %d" % (primary, shard_failovers)
            )
            # No single-flight poisoning: the map drained and the same
            # region decodes again (now that both replicas are back).
            assert service.flight.in_flight == 0, "single-flight map not drained"
            assert client.get_region(key, 0, 1).height > 0
            print(
                "chaos-smoke: killed primary %s, %d failover read(s) kept "
                "every request whole" % (primary, failovers)
            )
            client.close()
            check_budget("failover")
        finally:
            handle.stop()

    # --- Worker-process kill (proc topology, replication 2) -----------
    import os
    import signal

    from repro.serve.proxy import ProxyService, start_proxy_thread
    from repro.serve.worker import WorkerSpec, WorkerSupervisor

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-proc-") as root:
        from pathlib import Path

        specs = [
            WorkerSpec(shard_name="shard-%02d" % i, store_path=Path(root) / ("shard-%02d" % i))
            for i in range(2)
        ]
        supervisor = WorkerSupervisor(
            specs, workers_per_shard=2, restart_backoff=0.1
        ).start()
        service = ProxyService(supervisor, replication=2)
        handle = start_proxy_thread(service)
        try:
            client = ServeClient(*handle.address)
            image = generate_planar_image("lena", size=args.size, seed=4300, planes=3)
            buffer = io.BytesIO()
            write_ppm(image, buffer)
            key = str(client.put_image(buffer.getvalue(), stripes=4)["key"])
            victim = client.stats()["workers"]["shard-00"][0]
            os.kill(int(victim["pid"]), signal.SIGKILL)
            failed = 0
            for _ in range(10):
                for stripe in range(4):
                    try:
                        assert client.get_region(key, stripe, stripe + 1).height > 0
                    except BaseException:
                        failed += 1
            assert failed == 0, (
                "%d read(s) failed during the worker-process outage" % failed
            )
            respawn_deadline = time.monotonic() + 20.0
            while time.monotonic() < respawn_deadline:
                row = client.stats()["workers"]["shard-00"][0]
                if int(row["restarts"]) >= 1 and row["up"]:
                    break
                time.sleep(0.1)
            else:
                raise SystemExit("FAIL: SIGKILLed worker was not respawned in 20s")
            assert row["pid"] != victim["pid"], "respawn must produce a fresh pid"
            print(
                "chaos-smoke: SIGKILLed worker pid %s, zero failed reads, "
                "respawned as pid %s" % (victim["pid"], row["pid"])
            )
            client.close()
            check_budget("worker-kill")
        finally:
            handle.stop()
            service.close()

    elapsed = time.monotonic() - began
    print("chaos-smoke: PASS in %.1fs (budget %.0fs)" % (elapsed, args.budget))
    return 0


if __name__ == "__main__":
    sys.exit(main())
