"""Ablation benchmark: the Overflow Guard's aging effect (Section III).

The paper states that halving the per-context count and sum when the 5-bit
counter saturates "slightly improves the compression ratio by aging the
observed data".  The benchmark measures both arms and checks that disabling
aging never helps by more than a hair — i.e. the rescaling hardware is at
worst free and usually beneficial, which is the paper's claim.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import run_overflow_guard_ablation


@pytest.fixture(scope="module")
def ablation(ablation_size):
    return run_overflow_guard_ablation(size=ablation_size)


def test_overflow_guard_ablation(benchmark, ablation_size, record_report):
    result = benchmark.pedantic(
        lambda: run_overflow_guard_ablation(size=ablation_size), rounds=1, iterations=1
    )
    record_report("ablation_overflow_guard", result.format_report())
    print()
    print(result.format_report())


class TestOverflowGuardShape:
    def test_aging_does_not_hurt(self, ablation):
        """Disabling aging must not improve the average rate by more than noise."""
        assert ablation.delta_bpp > -0.01

    def test_both_arms_are_plausible(self, ablation):
        assert 3.0 < ablation.baseline_bpp < 8.0
        assert 3.0 < ablation.variant_bpp < 8.0

    def test_every_corpus_image_measured(self, ablation):
        assert len(ablation.per_image_baseline) == 7
        assert set(ablation.per_image_baseline) == set(ablation.per_image_variant)
