"""Reproduce Figure 4: average bit rate vs. frequency-count width.

Run with::

    python examples/figure4_sweep.py [--size 128]

The sweep encodes the whole corpus once per count width (10, 12, 14 and 16
bits) and prints the measured average bit rate together with the escape and
rescale counts that explain the shape of the curve, plus a small ASCII plot.
"""

import argparse

from repro.experiments.figure4 import run_figure4


def _ascii_plot(series, width: int = 48) -> str:
    bits, rates = series
    low, high = min(rates), max(rates)
    span = (high - low) or 1.0
    lines = []
    for count_bits, rate in zip(bits, rates):
        filled = int(round((rate - low) / span * width))
        lines.append("%2d bits | %s %.3f bpp" % (count_bits, "#" * filled, rate))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=128, help="corpus image size (default 128)")
    parser.add_argument("--seed", type=int, default=2007, help="corpus random seed")
    args = parser.parse_args()

    result = run_figure4(size=args.size, seed=args.seed)
    print("Figure 4 on the synthetic corpus (%dx%d):" % (args.size, args.size))
    print(result.format_table())
    print()
    print(_ascii_plot(result.as_series()))
    print()
    print("best count width on this corpus: %d bits (paper selects 14)" % result.best_count_bits())


if __name__ == "__main__":
    main()
