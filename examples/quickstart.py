"""Quickstart: compress and reconstruct one image with the proposed codec.

Run with::

    python examples/quickstart.py

The script generates a synthetic test image, compresses it with the
hardware-faithful configuration of the paper (512 compound contexts, 14-bit
frequency counts, LUT division), verifies that decoding reproduces the image
exactly, and prints the key statistics the encoder gathers along the way.
"""

from repro import CodecConfig, ProposedCodec, generate_image
from repro.imaging.metrics import first_order_entropy


def main() -> None:
    # A 128x128 stand-in for the classic "lena" test image (see DESIGN.md for
    # why the corpus is synthetic).
    image = generate_image("lena", size=128)
    print("input image: %r" % image)
    print("first-order entropy: %.3f bits/pixel" % first_order_entropy(image))

    # The hardware-faithful configuration the paper evaluates.
    codec = ProposedCodec(CodecConfig.hardware())
    stream = codec.encode(image)
    statistics = codec.last_statistics

    reconstructed = codec.decode(stream)
    assert reconstructed == image, "lossless reconstruction failed"

    print("compressed size: %d bytes" % len(stream))
    print("bit rate: %.3f bits/pixel" % statistics.bits_per_pixel)
    print("escape events: %d" % statistics.escapes)
    print("dynamic-tree rescales: %d" % statistics.tree_rescales)
    print("binary decisions coded: %d" % statistics.binary_decisions)
    print("coding-context usage (QE -> symbols): %s" % statistics.context_usage)
    print("lossless reconstruction verified.")


if __name__ == "__main__":
    main()
