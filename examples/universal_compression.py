"""Demonstrate the reconfigurable universal compressor of Figure 1.

Run with::

    python examples/universal_compression.py

A mixed stream — telemetry-like text, a grey-scale image, binary data,
another image — is pushed through the universal compressor.  The dispatcher
switches the modelling front-end whenever the block type changes (the
"Dynamic Modelling Reconfiguration" of Figure 1) and the report shows the
per-block ratios plus the reconfiguration overhead.
"""

from repro.imaging.synthetic import generate_image, generate_text_like_image
from repro.system import UniversalCompressor


def main() -> None:
    telemetry = ("T+%06d temp=%+06.2fC volt=%05.2fV status=NOMINAL\n" % (t, 21.5 + (t % 7) * 0.25, 27.9)
                 for t in range(0, 4000, 10))
    text_block = "".join(telemetry).encode("ascii")
    image_block = generate_image("peppers", size=96)
    binary_block = bytes((i * 37 + (i >> 3)) % 251 for i in range(8192))
    document_block = generate_text_like_image(96)

    compressor = UniversalCompressor(data_order=3)
    blocks = [text_block, image_block, binary_block, document_block]
    compressed, report = compressor.compress_stream(blocks)

    print("universal compression of a mixed stream:")
    for original, block in zip(blocks, compressed):
        size = block.original_size_bytes
        label = "image" if block.block_type.value == "image" else "data"
        marker = " (front-end reconfigured)" if block.reconfigured else ""
        print(
            "  %-5s %6d -> %6d bytes (ratio %.2f)%s"
            % (label, size, len(block.payload), size / len(block.payload), marker)
        )
        restored = compressor.decompress_block(block)
        assert restored == original, "lossless reconstruction failed"
    print(report.format_summary())
    print("all blocks reconstructed exactly.")


if __name__ == "__main__":
    main()
