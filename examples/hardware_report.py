"""Reproduce Table 2 and the performance claims of Section V.

Run with::

    python examples/hardware_report.py

The script runs the analytical hardware model: per-block device utilisation
(compared against the published synthesis results), the memory budgets
(3.7 KB modelling / 4 KB probability estimator), the static-timing clock
estimate and the pipeline throughput at the paper's 123 MHz.
"""

from repro.experiments.table2 import run_table2
from repro.experiments.throughput import run_throughput


def main() -> None:
    table2 = run_table2()
    print(table2.format_report())
    print()
    print("Throughput model (escape rate measured on a real encode):")
    print(run_throughput(size=128, estimated_clock_mhz=table2.timing.clock_mhz).format_report())


if __name__ == "__main__":
    main()
