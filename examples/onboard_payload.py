"""On-board payload scenario: strip-wise compression of a pushbroom sensor.

The paper's motivation (and its ESA co-author) is on-board payload data
processing: a satellite line-scan sensor produces image strips that must be
compressed losslessly in real time with modest hardware.  This example
models that workload:

* the sensor produces narrow, wide strips (here 64 rows x 256 columns);
* every strip is compressed independently with the hardware-faithful codec
  (so a single corrupted downlink packet only loses one strip);
* the pipeline model converts the measured per-strip symbol statistics into
  the sustained data rate the FPGA design would achieve at 123 MHz, and the
  script checks that the sensor's line rate stays below it.

Run with::

    python examples/onboard_payload.py
"""

from repro.core import CodecConfig, ProposedCodec
from repro.hardware.pipeline import PipelineModel
from repro.imaging.synthetic import SyntheticSpec, generate_image

#: A terrain-like spec: moderate texture, few man-made edges, sensor noise.
TERRAIN = SyntheticSpec(
    name="terrain-strip",
    base_scale=0.30,
    base_amplitude=80.0,
    edge_count=10,
    edge_amplitude=35.0,
    texture_amplitude=18.0,
    texture_frequency=28.0,
    texture_orientations=2,
    noise_sigma=5.5,
    description="push-broom terrain strip",
)


def main() -> None:
    strip_rows, strip_cols, strip_count = 64, 256, 6
    codec = ProposedCodec(CodecConfig.hardware())
    pipeline = PipelineModel(clock_mhz=123.0)

    total_raw = 0
    total_compressed = 0
    print("strip-wise compression of %d sensor strips (%dx%d):" % (strip_count, strip_rows, strip_cols))
    for index in range(strip_count):
        # Each strip gets its own random stream; the square generator output
        # is cropped to the strip geometry.
        square = generate_image("terrain", size=strip_cols, seed=31 + index, spec=TERRAIN)
        strip_pixels = [square.get(x, y) for y in range(strip_rows) for x in range(strip_cols)]
        from repro.imaging.image import GrayImage

        strip = GrayImage(strip_cols, strip_rows, strip_pixels, name="strip-%d" % index)

        stream = codec.encode(strip)
        assert codec.decode(stream) == strip
        stats = codec.last_statistics
        total_raw += strip.pixel_count
        total_compressed += len(stream)
        report = pipeline.analyse(strip_cols, strip_rows, escape_rate=stats.escapes / strip.pixel_count)
        print(
            "  strip %d: %5.3f bpp | FPGA would sustain %6.1f Mbit/s (%.1f strips/s)"
            % (index, stats.bits_per_pixel, report.megabits_per_second, report.frames_per_second)
        )

    print()
    print(
        "aggregate: %.3f bits/pixel over %d strips (%.1f%% of raw size)"
        % (
            8.0 * total_compressed / total_raw,
            strip_count,
            100.0 * total_compressed / total_raw,
        )
    )
    sensor_rate_mbits = 80.0
    sustained = pipeline.analyse(strip_cols, strip_rows, escape_rate=0.002).megabits_per_second
    print(
        "sensor line rate %.0f Mbit/s %s the design's sustained %.0f Mbit/s at 123 MHz"
        % (sensor_rate_mbits, "fits within" if sensor_rate_mbits <= sustained else "EXCEEDS", sustained)
    )


if __name__ == "__main__":
    main()
