"""Reproduce Table 1: bit-rate comparison of JPEG-LS, SLP, CALIC and the
proposed codec over the seven-image corpus.

Run with::

    python examples/table1_comparison.py [--size 256]

The default 192x192 corpus keeps the run to roughly a minute of pure-Python
coding; pass ``--size 512`` to match the paper's geometry (much slower).
Every stream is decoded and checked against the original, so the printed
rates always describe genuinely lossless compression.
"""

import argparse

from repro.experiments.table1 import run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=192, help="corpus image size (default 192)")
    parser.add_argument("--seed", type=int, default=2007, help="corpus random seed")
    args = parser.parse_args()

    result = run_table1(size=args.size, seed=args.seed)
    print("Table 1 on the synthetic corpus (%dx%d, seed %d):" % (args.size, args.size, args.seed))
    print(result.format_table(include_paper=True))
    print()
    averages = result.averages()
    ranked = sorted(averages, key=averages.get)
    print("ranking (best to worst): " + " < ".join(ranked))
    print(
        "paper ranking:            calic < proposed < slp < jpeg-ls "
        "(the proposed codec beats the two Golomb-Rice schemes and approaches CALIC)"
    )


if __name__ == "__main__":
    main()
